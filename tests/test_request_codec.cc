/**
 * @file
 * Canonical RunRequest serialization / hashing tests — the identity
 * contract under the serve result cache: round-trip equality, hash
 * stability across wire field reordering, and hash inequality for
 * every result-affecting field (and for the engine version).
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/request_codec.hh"
#include "serve/protocol.hh"

using namespace cpelide;

namespace
{

RunRequest
sampleRequest()
{
    RunRequest req;
    req.workload = "Square";
    req.protocol = ProtocolKind::CpElide;
    req.chiplets = 4;
    req.scale = 0.25;
    req.copies = 2;
    req.extraSyncSets = 3;
    req.label = "probe";
    return req;
}

TEST(RequestCodec, CodableRequiresPlainFields)
{
    RunRequest req = sampleRequest();
    EXPECT_TRUE(requestCodable(req));

    RunRequest noName = req;
    noName.workload.clear();
    EXPECT_FALSE(requestCodable(noName));

    RunRequest withBuilder = req;
    withBuilder.builder = [](Runtime &, double) {};
    EXPECT_FALSE(requestCodable(withBuilder));

    RunRequest withCfg = req;
    withCfg.cfg = GpuConfig{};
    EXPECT_FALSE(requestCodable(withCfg));

    RunRequest withOptions = req;
    withOptions.options = RunOptions{};
    EXPECT_FALSE(requestCodable(withOptions));
}

TEST(RequestCodec, CanonicalLineRoundTrips)
{
    const RunRequest req = sampleRequest();
    const std::string line = canonicalRequestLine(req);

    JsonLineParser p(line);
    ASSERT_TRUE(p.parse());
    RunRequest back;
    std::string error;
    ASSERT_TRUE(parseRequestFields(p, &back, &error)) << error;

    EXPECT_EQ(back.workload, req.workload);
    EXPECT_EQ(back.protocol, req.protocol);
    EXPECT_EQ(back.chiplets, req.chiplets);
    EXPECT_EQ(back.scale, req.scale); // exact: %.17g contract
    EXPECT_EQ(back.copies, req.copies);
    EXPECT_EQ(back.extraSyncSets, req.extraSyncSets);
    EXPECT_EQ(back.label, req.label);

    // And the round-tripped request re-canonicalizes to the same bytes.
    EXPECT_EQ(canonicalRequestLine(back), line);
}

TEST(RequestCodec, NonRepresentableScaleRoundTripsExactly)
{
    RunRequest req = sampleRequest();
    req.scale = 1.0 / 3.0;
    const std::string line = canonicalRequestLine(req);
    JsonLineParser p(line);
    ASSERT_TRUE(p.parse());
    RunRequest back;
    ASSERT_TRUE(parseRequestFields(p, &back));
    EXPECT_EQ(back.scale, req.scale);
}

TEST(RequestCodec, HashStableAcrossFieldReordering)
{
    const RunRequest req = sampleRequest();
    const std::uint64_t reference = requestHash(req, "v1");

    // Same request with the wire fields deliberately shuffled: the
    // parse + re-canonicalize path must erase the arrival order.
    const std::string shuffled =
        "{\"scale\":0.25,\"label\":\"probe\",\"chiplets\":4,"
        "\"extraSyncSets\":3,\"workload\":\"Square\",\"copies\":2,"
        "\"protocol\":\"cpelide\"}";
    JsonLineParser p(shuffled);
    ASSERT_TRUE(p.parse());
    RunRequest back;
    std::string error;
    ASSERT_TRUE(parseRequestFields(p, &back, &error)) << error;
    EXPECT_EQ(requestHash(back, "v1"), reference);

    // Stability within a process across calls.
    EXPECT_EQ(requestHash(req, "v1"), reference);
}

TEST(RequestCodec, DefaultedFieldsHashLikeExplicitOnes)
{
    // A wire request omitting copies/extraSyncSets/label means their
    // defaults; it must hash identically to one spelling them out.
    const std::string terse =
        "{\"workload\":\"Square\",\"protocol\":\"baseline\","
        "\"chiplets\":2,\"scale\":1}";
    JsonLineParser p(terse);
    ASSERT_TRUE(p.parse());
    RunRequest fromWire;
    ASSERT_TRUE(parseRequestFields(p, &fromWire));

    RunRequest explicitReq;
    explicitReq.workload = "Square";
    explicitReq.protocol = ProtocolKind::Baseline;
    explicitReq.chiplets = 2;
    explicitReq.scale = 1.0;
    explicitReq.copies = 1;
    explicitReq.extraSyncSets = 0;
    EXPECT_EQ(requestHash(fromWire, "v"), requestHash(explicitReq, "v"));
}

TEST(RequestCodec, HashDiffersPerResultAffectingField)
{
    const RunRequest base = sampleRequest();
    const std::uint64_t reference = requestHash(base, "v1");

    RunRequest w = base;
    w.workload = "Backprop";
    EXPECT_NE(requestHash(w, "v1"), reference) << "workload";

    RunRequest pr = base;
    pr.protocol = ProtocolKind::Baseline;
    EXPECT_NE(requestHash(pr, "v1"), reference) << "protocol";

    RunRequest ch = base;
    ch.chiplets = 8;
    EXPECT_NE(requestHash(ch, "v1"), reference) << "chiplets";

    RunRequest sc = base;
    sc.scale = 0.5;
    EXPECT_NE(requestHash(sc, "v1"), reference) << "scale";

    RunRequest co = base;
    co.copies = 4;
    EXPECT_NE(requestHash(co, "v1"), reference) << "copies";

    RunRequest ex = base;
    ex.extraSyncSets = 0;
    EXPECT_NE(requestHash(ex, "v1"), reference) << "extraSyncSets";

    // Engine version is part of the key: a rebuilt simulator must not
    // serve results computed by a different build.
    EXPECT_NE(requestHash(base, "v2"), reference) << "engineVersion";
}

TEST(RequestCodec, ParseRejectsOutOfRangeFields)
{
    const struct
    {
        const char *line;
        const char *what;
    } cases[] = {
        {"{\"protocol\":\"baseline\",\"chiplets\":2,\"scale\":1}",
         "missing workload"},
        {"{\"workload\":\"\",\"protocol\":\"baseline\",\"chiplets\":2,"
         "\"scale\":1}", "empty workload"},
        {"{\"workload\":\"Square\",\"chiplets\":2,\"scale\":1}",
         "missing protocol"},
        {"{\"workload\":\"Square\",\"protocol\":\"vaporware\","
         "\"chiplets\":2,\"scale\":1}", "unknown protocol"},
        {"{\"workload\":\"Square\",\"protocol\":\"baseline\","
         "\"chiplets\":0,\"scale\":1}", "chiplets too small"},
        {"{\"workload\":\"Square\",\"protocol\":\"baseline\","
         "\"chiplets\":65,\"scale\":1}", "chiplets too large"},
        {"{\"workload\":\"Square\",\"protocol\":\"baseline\","
         "\"chiplets\":2,\"scale\":0}", "scale zero"},
        {"{\"workload\":\"Square\",\"protocol\":\"baseline\","
         "\"chiplets\":2,\"scale\":1.5}", "scale above 1"},
        {"{\"workload\":\"Square\",\"protocol\":\"baseline\","
         "\"chiplets\":2,\"scale\":1,\"copies\":3}",
         "copies above chiplets"},
        {"{\"workload\":\"Square\",\"protocol\":\"baseline\","
         "\"chiplets\":2,\"scale\":1,\"extraSyncSets\":-1}",
         "negative extraSyncSets"},
    };
    for (const auto &c : cases) {
        const std::string line = c.line;
        JsonLineParser p(line);
        ASSERT_TRUE(p.parse()) << c.what;
        RunRequest req;
        std::string error;
        EXPECT_FALSE(parseRequestFields(p, &req, &error)) << c.what;
        EXPECT_FALSE(error.empty()) << c.what;
    }
}

TEST(RequestCodec, ProtocolNamesRoundTripCaseInsensitively)
{
    ProtocolKind kind;
    ASSERT_TRUE(protocolFromName("CPElide", &kind));
    EXPECT_EQ(kind, ProtocolKind::CpElide);
    ASSERT_TRUE(protocolFromName("baseline", &kind));
    EXPECT_EQ(kind, ProtocolKind::Baseline);
    ASSERT_TRUE(protocolFromName("HMG-WB", &kind));
    EXPECT_EQ(kind, ProtocolKind::HmgWriteBack);
    EXPECT_FALSE(protocolFromName("", &kind));
    EXPECT_FALSE(protocolFromName("hmgwb", &kind));
}

TEST(RequestCodec, ServeRequestWireRoundTrip)
{
    ServeRequest req;
    req.id = 42;
    req.priority = ServePriority::Bulk;
    req.run = sampleRequest();

    ServeRequest back;
    std::string error;
    ASSERT_TRUE(decodeServeRequest(encodeServeRequest(req), &back,
                                   &error)) << error;
    EXPECT_EQ(back.id, 42u);
    EXPECT_EQ(back.priority, ServePriority::Bulk);
    EXPECT_EQ(canonicalRequestLine(back.run),
              canonicalRequestLine(req.run));
}

TEST(RequestCodec, ServeResponseWireRoundTrip)
{
    ServeResponse resp;
    resp.id = 7;
    resp.ok = true;
    resp.cached = true;
    resp.result.workload = "Square";
    resp.result.protocol = "CPElide";
    resp.result.engineVersion = "v-test";
    resp.result.numChiplets = 4;
    resp.result.cycles = 1234;
    resp.result.simEvents = 99;
    resp.result.energy.dram = 1.0 / 3.0;

    ServeResponse back;
    ASSERT_TRUE(decodeServeResponse(encodeServeResponse(resp), &back));
    EXPECT_EQ(back.id, 7u);
    EXPECT_TRUE(back.ok);
    EXPECT_TRUE(back.cached);
    EXPECT_EQ(back.result.workload, "Square");
    EXPECT_EQ(back.result.engineVersion, "v-test");
    EXPECT_EQ(back.result.cycles, 1234u);
    EXPECT_EQ(back.result.simEvents, 99u);
    EXPECT_EQ(back.result.energy.dram, resp.result.energy.dram);
}

} // namespace
