/** @file stats/report helpers (table rendering, means, formatting). */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "stats/report.hh"
#include "stats/run_metrics.hh"

namespace cpelide
{
namespace
{

TEST(Geomean, BasicsAndEdgeCases)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Mean, BasicsAndEdgeCases)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Fmt, FormatsDecimalsAndPercent)
{
    EXPECT_EQ(fmt(1.2345), "1.23");
    EXPECT_EQ(fmt(1.2345, 3), "1.234");
    EXPECT_EQ(fmt(7.0, 0), "7");
    EXPECT_EQ(fmtPct(0.131), "+13.1%");
    EXPECT_EQ(fmtPct(-0.05), "-5.0%");
    EXPECT_EQ(fmtPct(0.0), "+0.0%");
}

TEST(AsciiTable, RendersAlignedGrid)
{
    AsciiTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRule();
    t.addRow({"b", "12345"});
    const std::string out = t.render();
    // Header, both rows, and four rules present.
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
              7); // 4 rules + header + 2 rows
}

TEST(AsciiTable, ShortRowsArePadded)
{
    AsciiTable t({"a", "b", "c"});
    t.addRow({"only"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| only |"), std::string::npos);
}

TEST(EscapeCell, NeutralizesControlCharactersAndTruncates)
{
    EXPECT_EQ(escapeCell("plain"), "plain");
    // Newlines, tabs, ANSI escapes, and DEL cannot break the table.
    EXPECT_EQ(escapeCell("a\nb\tc\x1b[31md\x7f"), "a b c [31md ");
    // Long text is truncated with an ellipsis at the cap.
    const std::string longText(100, 'x');
    const std::string cut = escapeCell(longText, 10);
    EXPECT_EQ(cut.size(), 10u);
    EXPECT_EQ(cut, "xxxxxxx...");
    EXPECT_EQ(escapeCell(longText).size(), 60u);
    EXPECT_EQ(escapeCell(""), "");
}

TEST(RenderErrorRows, EmptyListRendersNothing)
{
    EXPECT_EQ(renderErrorRows({}), "");
}

TEST(RenderErrorRows, RendersEscapedTable)
{
    std::vector<ErrorRow> rows;
    rows.push_back({"grid/Square", "timeout", 3,
                    "wall-time budget exceeded\nsecond line"});
    rows.push_back({"grid/Backprop", "panic", 1, "boom"});
    const std::string out = renderErrorRows(rows);
    EXPECT_NE(out.find("| job"), std::string::npos);
    EXPECT_NE(out.find("grid/Square"), std::string::npos);
    EXPECT_NE(out.find("timeout"), std::string::npos);
    EXPECT_NE(out.find("| 3"), std::string::npos);
    EXPECT_NE(out.find("boom"), std::string::npos);
    // The embedded newline was escaped: every line is a table line.
    for (std::size_t pos = out.find('\n'); pos != std::string::npos;
         pos = out.find('\n', pos + 1)) {
        if (pos + 1 < out.size()) {
            EXPECT_TRUE(out[pos + 1] == '|' || out[pos + 1] == '+');
        }
    }
}

TEST(MetricsRegistry, ConcurrentWritersLoseNothing)
{
    MetricsRegistry::global().clear();
    constexpr int kThreads = 8;
    constexpr int kRowsEach = 200;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < kRowsEach; ++i) {
                RunMetrics m;
                m.worker = t;
                MetricsRegistry::global().record(
                    "conc", "job" + std::to_string(t * kRowsEach + i),
                    true, m);
            }
        });
    }
    for (auto &w : workers)
        w.join();

    const auto rows = MetricsRegistry::global().rows();
    ASSERT_EQ(rows.size(),
              static_cast<std::size_t>(kThreads * kRowsEach));
    // Every row arrived intact (no torn strings / lost writes).
    std::vector<int> seen(kThreads * kRowsEach, 0);
    for (const auto &row : rows) {
        EXPECT_EQ(row.sweep, "conc");
        EXPECT_TRUE(row.ok);
        EXPECT_EQ(row.status, "ok");
        const int id = std::stoi(row.label.substr(3));
        ASSERT_GE(id, 0);
        ASSERT_LT(id, kThreads * kRowsEach);
        ++seen[static_cast<std::size_t>(id)];
    }
    for (int count : seen)
        EXPECT_EQ(count, 1);
    MetricsRegistry::global().clear();
}

TEST(MetricsRegistry, ErrorRowsRenderTheirStatus)
{
    MetricsRegistry::global().clear();
    RunMetrics m;
    MetricsRegistry::global().record("errsweep", "good", true, m);
    MetricsRegistry::global().record("errsweep", "bad", false, m,
                                     "timeout");
    const std::string table =
        MetricsRegistry::global().render("errsweep");
    EXPECT_NE(table.find("ok"), std::string::npos);
    EXPECT_NE(table.find("FAILED:timeout"), std::string::npos);
    // Rendering a sweep with no rows yields an empty table, not a
    // crash.
    const std::string empty =
        MetricsRegistry::global().render("no_such_sweep");
    EXPECT_EQ(empty.find("FAILED"), std::string::npos);
    MetricsRegistry::global().clear();
}

} // namespace
} // namespace cpelide
