/** @file stats/report helpers (table rendering, means, formatting). */

#include <gtest/gtest.h>

#include "stats/report.hh"

namespace cpelide
{
namespace
{

TEST(Geomean, BasicsAndEdgeCases)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Mean, BasicsAndEdgeCases)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Fmt, FormatsDecimalsAndPercent)
{
    EXPECT_EQ(fmt(1.2345), "1.23");
    EXPECT_EQ(fmt(1.2345, 3), "1.234");
    EXPECT_EQ(fmt(7.0, 0), "7");
    EXPECT_EQ(fmtPct(0.131), "+13.1%");
    EXPECT_EQ(fmtPct(-0.05), "-5.0%");
    EXPECT_EQ(fmtPct(0.0), "+0.0%");
}

TEST(AsciiTable, RendersAlignedGrid)
{
    AsciiTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRule();
    t.addRow({"b", "12345"});
    const std::string out = t.render();
    // Header, both rows, and four rules present.
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
              7); // 4 rules + header + 2 rows
}

TEST(AsciiTable, ShortRowsArePadded)
{
    AsciiTable t({"a", "b", "c"});
    t.addRow({"only"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| only |"), std::string::npos);
}

} // namespace
} // namespace cpelide
