/**
 * @file
 * Checkpoint-journal tests: encode/decode round-trips (including
 * hostile strings and double exactness), job-identity hashing,
 * torn-line tolerance, and SweepRunner resume semantics
 * (CPELIDE_RESUME / SweepRunner::setJournal).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exec/journal.hh"
#include "exec/sweep_runner.hh"
#include "harness/harness.hh"

using namespace cpelide;

namespace
{

/** Unique-ish temp path per test; removed on destruction. */
class TempPath
{
  public:
    explicit TempPath(const std::string &tag)
        : _path(std::string(::testing::TempDir()) + "cpelide_" + tag +
                "_" + std::to_string(getpid()) + ".jsonl")
    {
        std::remove(_path.c_str());
    }
    ~TempPath() { std::remove(_path.c_str()); }
    const std::string &str() const { return _path; }

  private:
    std::string _path;
};

JobOutcome
sampleOutcome()
{
    JobOutcome o;
    o.ok = true;
    o.attempts = 2;
    o.result.workload = "Square";
    o.result.protocol = "CPElide";
    o.result.numChiplets = 4;
    o.result.cycles = 123456789;
    o.result.kernels = 20;
    o.result.accesses = 987654;
    o.result.l1.hits = 11;
    o.result.l1.misses = 13;
    o.result.l2.hits = 17;
    o.result.l2.misses = 19;
    o.result.l3.hits = 23;
    o.result.l3.misses = 29;
    o.result.dramAccesses = 31;
    o.result.flits.l1l2 = 37;
    o.result.flits.l2l3 = 41;
    o.result.flits.remote = 43;
    o.result.energy.l2 = 0.1 + 0.2; // deliberately non-representable
    o.result.energy.dram = 1.0 / 3.0;
    o.result.l2FlushesIssued = 47;
    o.result.l2InvalidatesIssued = 53;
    o.result.l2FlushesElided = 59;
    o.result.l2InvalidatesElided = 61;
    o.result.linesWrittenBack = 67;
    o.result.syncStallCycles = 71;
    o.result.simEvents = 73;
    o.result.tableMaxEntries = 79;
    o.result.staleReads = 0;
    o.result.hostVisibilityViolations = 0;
    o.metrics.wallSeconds = 1.25;
    o.metrics.peakRssKb = 4096;
    o.metrics.simEvents = 73;
    o.metrics.worker = 3;
    return o;
}

void
expectOutcomeEq(const JobOutcome &a, const JobOutcome &b)
{
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.result.workload, b.result.workload);
    EXPECT_EQ(a.result.protocol, b.result.protocol);
    EXPECT_EQ(a.result.numChiplets, b.result.numChiplets);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.kernels, b.result.kernels);
    EXPECT_EQ(a.result.accesses, b.result.accesses);
    EXPECT_EQ(a.result.l1.hits, b.result.l1.hits);
    EXPECT_EQ(a.result.l2.misses, b.result.l2.misses);
    EXPECT_EQ(a.result.l3.hits, b.result.l3.hits);
    EXPECT_EQ(a.result.dramAccesses, b.result.dramAccesses);
    EXPECT_EQ(a.result.flits.remote, b.result.flits.remote);
    // Doubles must survive exactly (the %.17g contract): resumed
    // sweeps render byte-identical tables.
    EXPECT_EQ(a.result.energy.l2, b.result.energy.l2);
    EXPECT_EQ(a.result.energy.dram, b.result.energy.dram);
    EXPECT_EQ(a.result.l2FlushesElided, b.result.l2FlushesElided);
    EXPECT_EQ(a.result.linesWrittenBack, b.result.linesWrittenBack);
    EXPECT_EQ(a.result.syncStallCycles, b.result.syncStallCycles);
    EXPECT_EQ(a.result.simEvents, b.result.simEvents);
    EXPECT_EQ(a.result.tableMaxEntries, b.result.tableMaxEntries);
    EXPECT_EQ(a.result.staleReads, b.result.staleReads);
    EXPECT_EQ(a.result.hostVisibilityViolations,
              b.result.hostVisibilityViolations);
    EXPECT_EQ(a.metrics.wallSeconds, b.metrics.wallSeconds);
    EXPECT_EQ(a.metrics.peakRssKb, b.metrics.peakRssKb);
    EXPECT_EQ(a.metrics.worker, b.metrics.worker);
}

TEST(Journal, EncodeDecodeRoundTrip)
{
    const JobOutcome o = sampleOutcome();
    const std::string line =
        encodeOutcome(0xDEADBEEFCAFEBABEull, "sweep1", "job/label", o);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    std::uint64_t hash = 0;
    std::string sweep, label;
    JobOutcome back;
    ASSERT_TRUE(decodeOutcome(line, &hash, &sweep, &label, &back));
    EXPECT_EQ(hash, 0xDEADBEEFCAFEBABEull);
    EXPECT_EQ(sweep, "sweep1");
    EXPECT_EQ(label, "job/label");
    expectOutcomeEq(o, back);
}

TEST(Journal, HostileStringsSurviveEscaping)
{
    JobOutcome o;
    o.ok = false;
    o.kind = JobErrorKind::SimPanic;
    o.error = "panic: \"quoted\"\n\ttab \\ backslash \x01 ctrl";
    const std::string line =
        encodeOutcome(1, "sw\"eep", "la\\bel\nx", o);

    std::uint64_t hash = 0;
    std::string sweep, label;
    JobOutcome back;
    ASSERT_TRUE(decodeOutcome(line, &hash, &sweep, &label, &back));
    EXPECT_EQ(sweep, "sw\"eep");
    EXPECT_EQ(label, "la\\bel\nx");
    EXPECT_EQ(back.error, o.error);
    EXPECT_EQ(back.kind, JobErrorKind::SimPanic);
    EXPECT_FALSE(back.ok);
}

TEST(Journal, DecodeRejectsTornLines)
{
    const std::string line =
        encodeOutcome(7, "s", "l", sampleOutcome());
    std::uint64_t hash = 0;
    std::string sweep, label;
    JobOutcome out;
    // Any prefix of a valid line (a SIGKILL mid-append) must fail
    // cleanly, not crash or half-fill the outputs.
    for (std::size_t cut = 0; cut < line.size(); cut += 7) {
        EXPECT_FALSE(decodeOutcome(line.substr(0, cut), &hash, &sweep,
                                   &label, &out))
            << "prefix length " << cut;
    }
    EXPECT_FALSE(decodeOutcome("", &hash, &sweep, &label, &out));
    EXPECT_FALSE(decodeOutcome("not json", &hash, &sweep, &label, &out));
    EXPECT_FALSE(decodeOutcome("{}", &hash, &sweep, &label, &out));
}

TEST(Journal, JobHashIdentityProperties)
{
    SweepSpec a{"sweep_a", {}};
    a.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::Baseline, .chiplets = 2}));
    a.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::CpElide, .chiplets = 2}));

    // Deterministic within a process and sensitive to every identity
    // component.
    EXPECT_EQ(jobHash(a, 0), jobHash(a, 0));
    EXPECT_NE(jobHash(a, 0), jobHash(a, 1));

    SweepSpec b = a;
    b.name = "sweep_b";
    EXPECT_NE(jobHash(a, 0), jobHash(b, 0));

    SweepSpec c = a;
    c.jobs[0] = makeJob({.workload = "Square", .protocol = ProtocolKind::Baseline, .chiplets = 4});
    EXPECT_NE(jobHash(a, 0), jobHash(c, 0));

    SweepSpec d = a;
    d.jobs[0] = makeJob({.workload = "Square", .protocol = ProtocolKind::Baseline, .chiplets = 2, .scale = 0.5});
    EXPECT_NE(jobHash(a, 0), jobHash(d, 0));
}

TEST(Journal, OpenMissingFileIsEmptyJournal)
{
    TempPath tmp("missing");
    SweepJournal j;
    ASSERT_TRUE(j.open(tmp.str()));
    EXPECT_TRUE(j.isOpen());
    EXPECT_EQ(j.loadedRecords(), 0u);
    JobOutcome out;
    EXPECT_FALSE(j.lookup(42, &out));
}

TEST(Journal, AppendThenReloadRestoresSuccessfulOutcomes)
{
    TempPath tmp("reload");
    const JobOutcome good = sampleOutcome();
    JobOutcome bad;
    bad.ok = false;
    bad.kind = JobErrorKind::Timeout;
    bad.error = "wall-time budget exceeded";

    {
        SweepJournal j;
        ASSERT_TRUE(j.open(tmp.str()));
        j.append(1, "s", "good", good);
        j.append(2, "s", "bad", bad);
    }

    // Simulate a torn final line from a killed process.
    {
        std::FILE *f = std::fopen(tmp.str().c_str(), "a");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"hash\":\"3\",\"sweep\":\"s\",\"label\":\"torn", f);
        std::fclose(f);
    }

    SweepJournal j;
    ASSERT_TRUE(j.open(tmp.str()));
    EXPECT_EQ(j.loadedRecords(), 2u);

    JobOutcome out;
    ASSERT_TRUE(j.lookup(1, &out));
    EXPECT_TRUE(out.fromCheckpoint);
    expectOutcomeEq(good, out);
    // Failed outcomes are journaled but not restorable: they re-run.
    EXPECT_FALSE(j.lookup(2, &out));
    EXPECT_FALSE(j.lookup(3, &out));
}

TEST(Journal, TornTailAppendDoesNotPoisonLaterRecords)
{
    // The crash-mid-write regression: a process dies half way through
    // appending a record, leaving an unparsable fragment with no
    // newline. A naive append-mode reopen glues the *next* record onto
    // the fragment, losing both. open() must repair the tail first.
    TempPath tmp("tornappend");
    const JobOutcome first = sampleOutcome();
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(tmp.str()));
        j.append(1, "s", "first", first);
    }
    {
        std::FILE *f = std::fopen(tmp.str().c_str(), "a");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"hash\":\"2\",\"sweep\":\"s\",\"label\":\"to", f);
        std::fclose(f);
    }

    // Resume and append a new record over the torn tail.
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(tmp.str()));
        EXPECT_EQ(j.loadedRecords(), 1u);
        j.append(3, "s", "after-crash", first);
    }

    // Both intact records must survive a further reload.
    SweepJournal j;
    ASSERT_TRUE(j.open(tmp.str()));
    EXPECT_EQ(j.loadedRecords(), 2u);
    JobOutcome out;
    EXPECT_TRUE(j.lookup(1, &out));
    EXPECT_TRUE(j.lookup(3, &out));
    expectOutcomeEq(first, out);
    EXPECT_FALSE(j.lookup(2, &out));
}

TEST(Journal, UnterminatedCompleteTailIsCompletedNotDropped)
{
    // Variant: the process died between the record bytes and the
    // newline. The tail parses, so it must be kept (newline-completed),
    // and a subsequent append must land on its own line.
    TempPath tmp("tornnewline");
    const JobOutcome o = sampleOutcome();
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(tmp.str()));
        j.append(1, "s", "first", o);
    }
    {
        const std::string line = encodeOutcome(2, "s", "tail", o);
        std::FILE *f = std::fopen(tmp.str().c_str(), "a");
        ASSERT_NE(f, nullptr);
        std::fputs(line.c_str(), f); // no trailing '\n'
        std::fclose(f);
    }

    {
        SweepJournal j;
        ASSERT_TRUE(j.open(tmp.str()));
        EXPECT_EQ(j.loadedRecords(), 2u);
        j.append(3, "s", "next", o);
    }

    SweepJournal j;
    ASSERT_TRUE(j.open(tmp.str()));
    EXPECT_EQ(j.loadedRecords(), 3u);
    JobOutcome out;
    EXPECT_TRUE(j.lookup(1, &out));
    EXPECT_TRUE(j.lookup(2, &out));
    EXPECT_TRUE(j.lookup(3, &out));
}

TEST(Journal, SweepRunnerResumeSkipsCompletedJobs)
{
    TempPath tmp("resume");
    SweepSpec spec{"resume_grid", {}};
    for (const char *name : {"Square", "Backprop"}) {
        for (ProtocolKind kind :
             {ProtocolKind::Baseline, ProtocolKind::CpElide}) {
            spec.jobs.push_back(makeJob({.workload = name, .protocol = kind, .chiplets = 2, .scale = 0.05}));
        }
    }

    SweepRunner first(2);
    first.setJournal(tmp.str());
    const auto full = first.run(spec);
    ASSERT_EQ(full.size(), spec.jobs.size());
    for (const auto &o : full) {
        ASSERT_TRUE(o.ok);
        EXPECT_FALSE(o.fromCheckpoint);
    }

    // Second run against the same journal: everything restores, and
    // the merged outcomes carry identical results.
    SweepRunner second(2);
    second.setJournal(tmp.str());
    const auto resumed = second.run(spec);
    ASSERT_EQ(resumed.size(), full.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
        EXPECT_TRUE(resumed[i].fromCheckpoint) << i;
        expectOutcomeEq(full[i], resumed[i]);
    }
}

TEST(Journal, PartialJournalRunsOnlyMissingJobs)
{
    TempPath tmp("partial");
    SweepSpec spec{"partial_grid", {}};
    spec.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::Baseline, .chiplets = 2, .scale = 0.05}));
    spec.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::CpElide, .chiplets = 2, .scale = 0.05}));

    // Journal only job 0, as if the run died before job 1 finished.
    SweepRunner probe(1);
    probe.setJournal(tmp.str());
    SweepSpec firstHalf = spec;
    firstHalf.jobs.resize(1);
    const auto half = probe.run(firstHalf);
    ASSERT_TRUE(half[0].ok);

    SweepRunner resume(1);
    resume.setJournal(tmp.str());
    const auto out = resume.run(spec);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].fromCheckpoint);
    EXPECT_FALSE(out[1].fromCheckpoint);
    EXPECT_TRUE(out[1].ok);
}

TEST(Journal, EnvResumeKnobIsHonored)
{
    TempPath tmp("envresume");
    SweepSpec spec{"env_grid", {}};
    spec.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::Baseline, .chiplets = 2, .scale = 0.05}));

    ASSERT_EQ(setenv("CPELIDE_RESUME", tmp.str().c_str(), 1), 0);
    const auto first = SweepRunner(1).run(spec);
    const auto second = SweepRunner(1).run(spec);
    unsetenv("CPELIDE_RESUME");

    ASSERT_EQ(first.size(), 1u);
    EXPECT_FALSE(first[0].fromCheckpoint);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_TRUE(second[0].fromCheckpoint);
    expectOutcomeEq(first[0], second[0]);
}

} // namespace
