/** @file First-touch page placement tests. */

#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace cpelide
{
namespace
{

TEST(PageTable, FirstTouchWins)
{
    PageTable pt(4);
    EXPECT_EQ(pt.homeOf(0x1000, 2), 2);
    EXPECT_EQ(pt.homeOf(0x1000, 3), 2); // already placed
    EXPECT_EQ(pt.homeOf(0x1fff, 1), 2); // same page
    EXPECT_EQ(pt.homeOf(0x2000, 1), 1); // next page
    EXPECT_EQ(pt.pagesPlaced(), 2u);
}

TEST(PageTable, PeekDoesNotPlace)
{
    PageTable pt(4);
    EXPECT_EQ(pt.peekHome(0x5000), kNoChiplet);
    EXPECT_EQ(pt.pagesPlaced(), 0u);
    pt.homeOf(0x5000, 0);
    EXPECT_EQ(pt.peekHome(0x5000), 0);
}

TEST(PageTable, ExplicitPlacementOverrides)
{
    PageTable pt(4);
    pt.place(0x3000, 3);
    EXPECT_EQ(pt.homeOf(0x3000, 0), 3);
}

TEST(PageTable, AffinePartitionDistributesPages)
{
    PageTable pt(4);
    // Four chiplets first-touch disjoint quarters.
    for (int c = 0; c < 4; ++c) {
        for (Addr a = 0; a < 16 * kPageBytes; a += kPageBytes)
            pt.homeOf(c * 16 * kPageBytes + a, c);
    }
    EXPECT_EQ(pt.pagesPlaced(), 64u);
    for (int c = 0; c < 4; ++c)
        EXPECT_EQ(pt.peekHome(c * 16 * kPageBytes + 5 * kPageBytes), c);
}

} // namespace
} // namespace cpelide
