/**
 * @file
 * In-process SimServer tests: the daemon contract end to end over a
 * real Unix socket — repeated requests served byte-identically from
 * the content-addressed cache without re-simulating, failures in a
 * mixed batch isolated per request, per-client quotas, the
 * interactive-before-bulk lanes, stats probes, malformed-line
 * rejection, and graceful drain.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "serve/client.hh"
#include "serve/server.hh"

using namespace cpelide;

namespace
{

/** Short unique socket path (sun_path is ~108 bytes). */
std::string
testSocket(const std::string &tag)
{
    const std::string path = std::string(::testing::TempDir()) + "sd_" +
                             tag + std::to_string(getpid()) + ".sock";
    std::remove(path.c_str());
    return path;
}

ServeRequest
squareRequest(std::uint64_t id, int chiplets = 2)
{
    ServeRequest req;
    req.id = id;
    req.run.workload = "Square";
    req.run.protocol = ProtocolKind::CpElide;
    req.run.chiplets = chiplets;
    req.run.scale = 0.05;
    return req;
}

class ServeTest : public ::testing::Test
{
  protected:
    SimServer::Config
    baseConfig(const std::string &tag)
    {
        SimServer::Config cfg;
        cfg.socketPath = testSocket(tag);
        cfg.cacheSize = 64;
        cfg.quota = 64;
        cfg.batch = 8;
        cfg.jobs = 2;
        return cfg;
    }
};

TEST_F(ServeTest, RepeatRequestIsCachedAndByteIdentical)
{
    SimServer server(baseConfig("rep"));
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    const ServeRequest req = squareRequest(1);
    ASSERT_TRUE(client.send(req));
    std::string first;
    ASSERT_TRUE(client.recvLine(&first));
    ASSERT_TRUE(client.send(req));
    std::string second;
    ASSERT_TRUE(client.recvLine(&second));

    ServeResponse r1, r2;
    ASSERT_TRUE(decodeServeResponse(first, &r1));
    ASSERT_TRUE(decodeServeResponse(second, &r2));
    EXPECT_TRUE(r1.ok);
    EXPECT_FALSE(r1.cached);
    EXPECT_TRUE(r2.ok);
    EXPECT_TRUE(r2.cached);

    // Byte-identical modulo the cached marker itself.
    const std::string miss = "\"cached\":0";
    const std::size_t at = first.find(miss);
    ASSERT_NE(at, std::string::npos);
    std::string expected = first;
    expected.replace(at, miss.size(), "\"cached\":1");
    EXPECT_EQ(second, expected);

    // The hit never touched the pool: one simulation, its event count
    // flat across the two answers.
    ServeStats stats;
    ASSERT_TRUE(client.stats(&stats));
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.simulations, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.cacheMisses, 1u);
    EXPECT_EQ(stats.simEvents, r1.result.simEvents);
    EXPECT_EQ(stats.failures, 0u);

    server.stop();
}

TEST_F(ServeTest, MixedBatchIsolatesFailuresPerRequest)
{
    SimServer server(baseConfig("mix"));
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    // 20 pipelined requests; every 5th names a workload that does not
    // exist, so its job body throws inside the pool.
    const int total = 20;
    std::vector<bool> shouldFail(static_cast<std::size_t>(total) + 1);
    for (int i = 1; i <= total; ++i) {
        ServeRequest req =
            squareRequest(static_cast<std::uint64_t>(i),
                          1 + i % 3);
        if (i % 5 == 0) {
            req.run.workload = "NoSuchWorkload";
            shouldFail[static_cast<std::size_t>(i)] = true;
        }
        ASSERT_TRUE(client.send(req));
    }

    std::map<std::uint64_t, ServeResponse> byId;
    for (int i = 0; i < total; ++i) {
        ServeResponse resp;
        ASSERT_TRUE(client.recvResponse(&resp));
        byId[resp.id] = resp;
    }
    ASSERT_EQ(byId.size(), static_cast<std::size_t>(total));

    for (int i = 1; i <= total; ++i) {
        const ServeResponse &resp = byId[static_cast<std::uint64_t>(i)];
        if (shouldFail[static_cast<std::size_t>(i)]) {
            EXPECT_FALSE(resp.ok) << "id " << i;
            EXPECT_NE(resp.error.find("NoSuchWorkload"),
                      std::string::npos) << resp.error;
        } else {
            EXPECT_TRUE(resp.ok) << "id " << i << ": " << resp.error;
            EXPECT_GT(resp.result.cycles, 0u) << "id " << i;
        }
    }

    ServeStats stats;
    ASSERT_TRUE(client.stats(&stats));
    EXPECT_EQ(stats.failures, 4u);

    server.stop();
}

TEST_F(ServeTest, QuotaRejectsExcessInFlightRequests)
{
    SimServer::Config cfg = baseConfig("quota");
    cfg.quota = 1;
    cfg.jobs = 1;
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    // Pipeline several distinct requests in one burst: with a quota of
    // one, the reader rejects whatever arrives while the first is
    // still in flight.
    const int total = 6;
    for (int i = 1; i <= total; ++i)
        ASSERT_TRUE(client.send(squareRequest(
            static_cast<std::uint64_t>(i), 1 + i % 4)));

    int rejected = 0, served = 0;
    for (int i = 0; i < total; ++i) {
        ServeResponse resp;
        ASSERT_TRUE(client.recvResponse(&resp));
        if (resp.ok) {
            ++served;
        } else {
            EXPECT_NE(resp.error.find("quota"), std::string::npos)
                << resp.error;
            ++rejected;
        }
    }
    EXPECT_GE(served, 1);
    EXPECT_GE(rejected, 1);
    EXPECT_EQ(served + rejected, total);

    server.stop();
}

TEST_F(ServeTest, InteractiveLaneBeatsBulk)
{
    SimServer::Config cfg = baseConfig("lane");
    cfg.jobs = 1;
    cfg.batch = 1; // one job per batch: lane order fully decides
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    // Three bulk asks, then one interactive; distinct points so the
    // cache cannot shortcut any of them.
    for (std::uint64_t id = 1; id <= 3; ++id) {
        ServeRequest bulk = squareRequest(id, static_cast<int>(id));
        bulk.priority = ServePriority::Bulk;
        ASSERT_TRUE(client.send(bulk));
    }
    ServeRequest urgent = squareRequest(100, 4);
    ASSERT_TRUE(client.send(urgent));

    std::vector<std::uint64_t> arrival;
    for (int i = 0; i < 4; ++i) {
        ServeResponse resp;
        ASSERT_TRUE(client.recvResponse(&resp));
        EXPECT_TRUE(resp.ok) << resp.error;
        arrival.push_back(resp.id);
    }

    // The interactive ask cannot come last: at worst one bulk batch
    // was already executing when it arrived, and every later batch
    // picks the interactive lane first.
    const auto pos = [&](std::uint64_t id) {
        for (std::size_t i = 0; i < arrival.size(); ++i)
            if (arrival[i] == id)
                return i;
        return arrival.size();
    };
    EXPECT_LT(pos(100), pos(3));

    server.stop();
}

TEST_F(ServeTest, MalformedLinesAreRejectedNotFatal)
{
    SimServer server(baseConfig("bad"));
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    ASSERT_TRUE(client.sendLine("this is not json"));
    std::string line;
    ASSERT_TRUE(client.recvLine(&line));
    ServeResponse resp;
    ASSERT_TRUE(decodeServeResponse(line, &resp));
    EXPECT_FALSE(resp.ok);

    ASSERT_TRUE(client.sendLine(
        "{\"type\":\"run\",\"id\":9,\"workload\":\"Square\","
        "\"protocol\":\"baseline\",\"chiplets\":99,\"scale\":1}"));
    ASSERT_TRUE(client.recvLine(&line));
    ASSERT_TRUE(decodeServeResponse(line, &resp));
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.id, 9u); // rejection still correlates

    // The connection survives rejects: a good request still works.
    ServeResponse good;
    ASSERT_TRUE(client.request(squareRequest(10), &good));
    EXPECT_TRUE(good.ok) << good.error;

    server.stop();
}

TEST_F(ServeTest, GracefulStopDrainsQueuedWork)
{
    SimServer server(baseConfig("drain"));
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    const int total = 5;
    for (int i = 1; i <= total; ++i)
        ASSERT_TRUE(client.send(squareRequest(
            static_cast<std::uint64_t>(i), 1 + i % 4)));

    // Barrier: the reader answers stats inline after it has enqueued
    // all five runs, so once the probe answers they are all in the
    // lanes (or already answered).
    ASSERT_TRUE(client.sendLine("{\"type\":\"stats\"}"));
    int results = 0;
    bool sawStats = false;
    std::string line;
    while (!sawStats && client.recvLine(&line)) {
        ServeStats stats;
        ServeResponse resp;
        if (decodeServeStats(line, &stats)) {
            EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(total));
            sawStats = true;
        } else if (decodeServeResponse(line, &resp)) {
            EXPECT_TRUE(resp.ok) << resp.error;
            ++results;
        }
    }
    ASSERT_TRUE(sawStats);

    // Stop with work still queued: every request must answer before
    // the connection closes.
    server.stop();
    while (results < total && client.recvLine(&line)) {
        ServeResponse resp;
        ASSERT_TRUE(decodeServeResponse(line, &resp));
        EXPECT_TRUE(resp.ok) << resp.error;
        ++results;
    }
    EXPECT_EQ(results, total);
    EXPECT_FALSE(client.recvLine(&line)); // then EOF
    EXPECT_FALSE(server.running());
}

TEST_F(ServeTest, RestartServesFromWarmDiskCache)
{
    SimServer::Config cfg = baseConfig("warm");
    cfg.cacheDir = std::string(::testing::TempDir()) + "sd_warmcache_" +
                   std::to_string(getpid());
    std::filesystem::remove_all(cfg.cacheDir);

    {
        SimServer server(cfg);
        ASSERT_TRUE(server.start());
        SimClient client;
        ASSERT_TRUE(client.connect(server.socketPath()));
        ServeResponse resp;
        ASSERT_TRUE(client.request(squareRequest(1), &resp));
        EXPECT_TRUE(resp.ok) << resp.error;
        EXPECT_FALSE(resp.cached);
        server.stop();
    }

    // Same point against a fresh daemon: a hit without simulating.
    SimServer server(cfg);
    ASSERT_TRUE(server.start());
    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));
    ServeResponse resp;
    ASSERT_TRUE(client.request(squareRequest(1), &resp));
    EXPECT_TRUE(resp.ok) << resp.error;
    EXPECT_TRUE(resp.cached);
    ServeStats stats;
    ASSERT_TRUE(client.stats(&stats));
    EXPECT_EQ(stats.simulations, 0u);
    server.stop();
    std::filesystem::remove_all(cfg.cacheDir);
}

} // namespace
