/**
 * @file
 * In-process SimServer tests: the daemon contract end to end over a
 * real Unix socket — repeated requests served byte-identically from
 * the content-addressed cache without re-simulating, failures in a
 * mixed batch isolated per request, per-client quotas, the
 * interactive-before-bulk lanes, stats probes, malformed-line
 * rejection, and graceful drain.
 *
 * Plus the resilience layer: health probes, per-request deadlines
 * (expired-in-queue and exceeded-while-executing), queue-bound load
 * shedding with retry hints, stalled-reader isolation (a wedged
 * client is kicked, everyone else keeps streaming), mid-stream
 * disconnect tolerance (the SIGPIPE regression), and live-socket
 * clobber refusal.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hh"
#include "serve/server.hh"

using namespace cpelide;

namespace
{

/** Short unique socket path (sun_path is ~108 bytes). */
std::string
testSocket(const std::string &tag)
{
    const std::string path = std::string(::testing::TempDir()) + "sd_" +
                             tag + std::to_string(getpid()) + ".sock";
    std::remove(path.c_str());
    return path;
}

ServeRequest
squareRequest(std::uint64_t id, int chiplets = 2)
{
    ServeRequest req;
    req.id = id;
    req.run.workload = "Square";
    req.run.protocol = ProtocolKind::CpElide;
    req.run.chiplets = chiplets;
    req.run.scale = 0.05;
    return req;
}

class ServeTest : public ::testing::Test
{
  protected:
    SimServer::Config
    baseConfig(const std::string &tag)
    {
        SimServer::Config cfg;
        cfg.socketPath = testSocket(tag);
        cfg.cacheSize = 64;
        cfg.quota = 64;
        cfg.batch = 8;
        cfg.jobs = 2;
        return cfg;
    }
};

TEST_F(ServeTest, RepeatRequestIsCachedAndByteIdentical)
{
    SimServer server(baseConfig("rep"));
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    const ServeRequest req = squareRequest(1);
    ASSERT_TRUE(client.send(req));
    std::string first;
    ASSERT_TRUE(client.recvLine(&first));
    ASSERT_TRUE(client.send(req));
    std::string second;
    ASSERT_TRUE(client.recvLine(&second));

    ServeResponse r1, r2;
    ASSERT_TRUE(decodeServeResponse(first, &r1));
    ASSERT_TRUE(decodeServeResponse(second, &r2));
    EXPECT_TRUE(r1.ok);
    EXPECT_FALSE(r1.cached);
    EXPECT_TRUE(r2.ok);
    EXPECT_TRUE(r2.cached);

    // Byte-identical modulo the cached marker itself.
    const std::string miss = "\"cached\":0";
    const std::size_t at = first.find(miss);
    ASSERT_NE(at, std::string::npos);
    std::string expected = first;
    expected.replace(at, miss.size(), "\"cached\":1");
    EXPECT_EQ(second, expected);

    // The hit never touched the pool: one simulation, its event count
    // flat across the two answers.
    ServeStats stats;
    ASSERT_TRUE(client.stats(&stats));
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.simulations, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.cacheMisses, 1u);
    EXPECT_EQ(stats.simEvents, r1.result.simEvents);
    EXPECT_EQ(stats.failures, 0u);

    server.stop();
}

TEST_F(ServeTest, MixedBatchIsolatesFailuresPerRequest)
{
    SimServer server(baseConfig("mix"));
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    // 20 pipelined requests; every 5th names a workload that does not
    // exist, so its job body throws inside the pool.
    const int total = 20;
    std::vector<bool> shouldFail(static_cast<std::size_t>(total) + 1);
    for (int i = 1; i <= total; ++i) {
        ServeRequest req =
            squareRequest(static_cast<std::uint64_t>(i),
                          1 + i % 3);
        if (i % 5 == 0) {
            req.run.workload = "NoSuchWorkload";
            shouldFail[static_cast<std::size_t>(i)] = true;
        }
        ASSERT_TRUE(client.send(req));
    }

    std::map<std::uint64_t, ServeResponse> byId;
    for (int i = 0; i < total; ++i) {
        ServeResponse resp;
        ASSERT_TRUE(client.recvResponse(&resp));
        byId[resp.id] = resp;
    }
    ASSERT_EQ(byId.size(), static_cast<std::size_t>(total));

    for (int i = 1; i <= total; ++i) {
        const ServeResponse &resp = byId[static_cast<std::uint64_t>(i)];
        if (shouldFail[static_cast<std::size_t>(i)]) {
            EXPECT_FALSE(resp.ok) << "id " << i;
            EXPECT_NE(resp.error.find("NoSuchWorkload"),
                      std::string::npos) << resp.error;
        } else {
            EXPECT_TRUE(resp.ok) << "id " << i << ": " << resp.error;
            EXPECT_GT(resp.result.cycles, 0u) << "id " << i;
        }
    }

    ServeStats stats;
    ASSERT_TRUE(client.stats(&stats));
    EXPECT_EQ(stats.failures, 4u);

    server.stop();
}

TEST_F(ServeTest, QuotaRejectsExcessInFlightRequests)
{
    SimServer::Config cfg = baseConfig("quota");
    cfg.quota = 1;
    cfg.jobs = 1;
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    // Pipeline several distinct requests in one burst: with a quota of
    // one, the reader rejects whatever arrives while the first is
    // still in flight.
    const int total = 6;
    for (int i = 1; i <= total; ++i)
        ASSERT_TRUE(client.send(squareRequest(
            static_cast<std::uint64_t>(i), 1 + i % 4)));

    int rejected = 0, served = 0;
    for (int i = 0; i < total; ++i) {
        ServeResponse resp;
        ASSERT_TRUE(client.recvResponse(&resp));
        if (resp.ok) {
            ++served;
        } else {
            EXPECT_NE(resp.error.find("quota"), std::string::npos)
                << resp.error;
            ++rejected;
        }
    }
    EXPECT_GE(served, 1);
    EXPECT_GE(rejected, 1);
    EXPECT_EQ(served + rejected, total);

    server.stop();
}

TEST_F(ServeTest, InteractiveLaneBeatsBulk)
{
    SimServer::Config cfg = baseConfig("lane");
    cfg.jobs = 1;
    cfg.batch = 1; // one job per batch: lane order fully decides
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    // Three bulk asks, then one interactive; distinct points so the
    // cache cannot shortcut any of them.
    for (std::uint64_t id = 1; id <= 3; ++id) {
        ServeRequest bulk = squareRequest(id, static_cast<int>(id));
        bulk.priority = ServePriority::Bulk;
        ASSERT_TRUE(client.send(bulk));
    }
    ServeRequest urgent = squareRequest(100, 4);
    ASSERT_TRUE(client.send(urgent));

    std::vector<std::uint64_t> arrival;
    for (int i = 0; i < 4; ++i) {
        ServeResponse resp;
        ASSERT_TRUE(client.recvResponse(&resp));
        EXPECT_TRUE(resp.ok) << resp.error;
        arrival.push_back(resp.id);
    }

    // The interactive ask cannot come last: at worst one bulk batch
    // was already executing when it arrived, and every later batch
    // picks the interactive lane first.
    const auto pos = [&](std::uint64_t id) {
        for (std::size_t i = 0; i < arrival.size(); ++i)
            if (arrival[i] == id)
                return i;
        return arrival.size();
    };
    EXPECT_LT(pos(100), pos(3));

    server.stop();
}

TEST_F(ServeTest, MalformedLinesAreRejectedNotFatal)
{
    SimServer server(baseConfig("bad"));
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    ASSERT_TRUE(client.sendLine("this is not json"));
    std::string line;
    ASSERT_TRUE(client.recvLine(&line));
    ServeResponse resp;
    ASSERT_TRUE(decodeServeResponse(line, &resp));
    EXPECT_FALSE(resp.ok);

    ASSERT_TRUE(client.sendLine(
        "{\"type\":\"run\",\"id\":9,\"workload\":\"Square\","
        "\"protocol\":\"baseline\",\"chiplets\":99,\"scale\":1}"));
    ASSERT_TRUE(client.recvLine(&line));
    ASSERT_TRUE(decodeServeResponse(line, &resp));
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.id, 9u); // rejection still correlates

    // The connection survives rejects: a good request still works.
    ServeResponse good;
    ASSERT_TRUE(client.request(squareRequest(10), &good));
    EXPECT_TRUE(good.ok) << good.error;

    server.stop();
}

TEST_F(ServeTest, GracefulStopDrainsQueuedWork)
{
    SimServer server(baseConfig("drain"));
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    const int total = 5;
    for (int i = 1; i <= total; ++i)
        ASSERT_TRUE(client.send(squareRequest(
            static_cast<std::uint64_t>(i), 1 + i % 4)));

    // Barrier: the reader answers stats inline after it has enqueued
    // all five runs, so once the probe answers they are all in the
    // lanes (or already answered).
    ASSERT_TRUE(client.sendLine("{\"type\":\"stats\"}"));
    int results = 0;
    bool sawStats = false;
    std::string line;
    while (!sawStats && client.recvLine(&line)) {
        ServeStats stats;
        ServeResponse resp;
        if (decodeServeStats(line, &stats)) {
            EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(total));
            sawStats = true;
        } else if (decodeServeResponse(line, &resp)) {
            EXPECT_TRUE(resp.ok) << resp.error;
            ++results;
        }
    }
    ASSERT_TRUE(sawStats);

    // Stop with work still queued: every request must answer before
    // the connection closes.
    server.stop();
    while (results < total && client.recvLine(&line)) {
        ServeResponse resp;
        ASSERT_TRUE(decodeServeResponse(line, &resp));
        EXPECT_TRUE(resp.ok) << resp.error;
        ++results;
    }
    EXPECT_EQ(results, total);
    EXPECT_FALSE(client.recvLine(&line)); // then EOF
    EXPECT_FALSE(server.running());
}

TEST_F(ServeTest, RestartServesFromWarmDiskCache)
{
    SimServer::Config cfg = baseConfig("warm");
    cfg.cacheDir = std::string(::testing::TempDir()) + "sd_warmcache_" +
                   std::to_string(getpid());
    std::filesystem::remove_all(cfg.cacheDir);

    {
        SimServer server(cfg);
        ASSERT_TRUE(server.start());
        SimClient client;
        ASSERT_TRUE(client.connect(server.socketPath()));
        ServeResponse resp;
        ASSERT_TRUE(client.request(squareRequest(1), &resp));
        EXPECT_TRUE(resp.ok) << resp.error;
        EXPECT_FALSE(resp.cached);
        server.stop();
    }

    // Same point against a fresh daemon: a hit without simulating.
    SimServer server(cfg);
    ASSERT_TRUE(server.start());
    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));
    ServeResponse resp;
    ASSERT_TRUE(client.request(squareRequest(1), &resp));
    EXPECT_TRUE(resp.ok) << resp.error;
    EXPECT_TRUE(resp.cached);
    ServeStats stats;
    ASSERT_TRUE(client.stats(&stats));
    EXPECT_EQ(stats.simulations, 0u);
    server.stop();
    std::filesystem::remove_all(cfg.cacheDir);
}

TEST_F(ServeTest, HealthProbeReportsLiveShape)
{
    SimServer server(baseConfig("hlth"));
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    ServeHealth h;
    ASSERT_TRUE(client.health(&h));
    EXPECT_GE(h.connections, 1u);
    EXPECT_EQ(h.queueInteractive, 0u);
    EXPECT_EQ(h.queueBulk, 0u);
    EXPECT_EQ(h.executing, 0u);
    EXPECT_EQ(h.shed, 0u);
    EXPECT_EQ(h.deadlineExpired, 0u);
    EXPECT_FALSE(h.engineVersion.empty());

    server.stop();
}

TEST_F(ServeTest, DeadlineExpiredInQueueAnswersWithoutSimulating)
{
    SimServer::Config cfg = baseConfig("dlq");
    cfg.jobs = 1;
    cfg.batch = 1;
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    // A long blocker occupies the single-job scheduler; the request
    // queued behind it carries a 1 ms deadline it cannot make.
    ServeRequest blocker = squareRequest(1, 4);
    blocker.run.scale = 0.5;
    ASSERT_TRUE(client.send(blocker));
    ServeRequest doomed = squareRequest(2, 1);
    doomed.run.label = "doomed";
    doomed.deadlineMs = 1;
    ASSERT_TRUE(client.send(doomed));

    std::map<std::uint64_t, ServeResponse> byId;
    for (int i = 0; i < 2; ++i) {
        ServeResponse resp;
        ASSERT_TRUE(client.recvResponse(&resp));
        byId[resp.id] = resp;
    }
    EXPECT_TRUE(byId[1].ok) << byId[1].error;
    EXPECT_FALSE(byId[2].ok);
    EXPECT_EQ(byId[2].error.rfind("deadline:", 0), 0u) << byId[2].error;

    // The expired request never simulated.
    ServeStats stats;
    ASSERT_TRUE(client.stats(&stats));
    EXPECT_EQ(stats.simulations, 1u);
    EXPECT_GE(stats.deadlineExpired, 1u);

    server.stop();
}

TEST_F(ServeTest, DeadlineClampsTheExecutingJobsBudget)
{
    SimServer::Config cfg = baseConfig("dlx");
    cfg.jobs = 1;
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    // A run far larger than its 5 ms deadline: it *starts* in time
    // (empty queue) and the watchdog budget — clamped to the remaining
    // deadline — cancels it mid-simulation.
    ServeRequest req = squareRequest(7, 4);
    req.run.scale = 1.0;
    req.deadlineMs = 5;
    ServeResponse resp;
    ASSERT_TRUE(client.request(req, &resp));
    ASSERT_FALSE(resp.ok);
    EXPECT_EQ(resp.error.rfind("deadline:", 0), 0u) << resp.error;

    server.stop();
}

TEST_F(ServeTest, QueueBoundShedsBulkFirstWithRetryHint)
{
    SimServer::Config cfg = baseConfig("shed");
    cfg.jobs = 1;
    cfg.batch = 1;
    cfg.maxQueue = 1;
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    SimClient c1, c2;
    ASSERT_TRUE(c1.connect(server.socketPath()));
    ASSERT_TRUE(c2.connect(server.socketPath()));

    // Occupy the scheduler, then wait (health barrier) until the
    // blocker is executing and the queue is empty.
    ServeRequest blocker = squareRequest(1, 4);
    blocker.run.scale = 0.5;
    ASSERT_TRUE(c1.send(blocker));
    ServeHealth h;
    do {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ASSERT_TRUE(c2.health(&h));
    } while (h.executing == 0);

    // Fill the one queue slot with a bulk ask...
    ServeRequest bulkReq = squareRequest(2, 1);
    bulkReq.run.label = "bulk-victim";
    bulkReq.priority = ServePriority::Bulk;
    ASSERT_TRUE(c2.send(bulkReq));
    do {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ASSERT_TRUE(c2.health(&h));
    } while (h.queueBulk == 0);

    // ...so the next bulk ask is shed outright, with a retry hint...
    ServeRequest shedReq = squareRequest(3, 2);
    shedReq.run.label = "bulk-shed";
    shedReq.priority = ServePriority::Bulk;
    ASSERT_TRUE(c2.send(shedReq));

    // ...and an interactive ask evicts the queued bulk one instead of
    // being shed itself.
    ServeRequest urgent = squareRequest(4, 3);
    urgent.run.label = "urgent";
    ASSERT_TRUE(c2.send(urgent));

    std::map<std::uint64_t, ServeResponse> byId;
    for (int i = 0; i < 3; ++i) {
        ServeResponse resp;
        ASSERT_TRUE(c2.recvResponse(&resp));
        byId[resp.id] = resp;
    }
    EXPECT_FALSE(byId[3].ok);
    EXPECT_EQ(byId[3].error.rfind("shed:", 0), 0u) << byId[3].error;
    EXPECT_GT(byId[3].retryAfterMs, 0u);
    EXPECT_FALSE(byId[2].ok); // the bulk victim, evicted for urgent
    EXPECT_EQ(byId[2].error.rfind("shed:", 0), 0u) << byId[2].error;
    EXPECT_GT(byId[2].retryAfterMs, 0u);
    EXPECT_TRUE(byId[4].ok) << byId[4].error;

    ServeResponse blocked;
    ASSERT_TRUE(c1.recvResponse(&blocked));
    EXPECT_TRUE(blocked.ok) << blocked.error;

    ServeStats stats;
    ASSERT_TRUE(c2.stats(&stats));
    EXPECT_EQ(stats.shed, 2u);

    server.stop();
}

TEST_F(ServeTest, StalledReaderIsKickedAndDelaysOnlyItself)
{
    SimServer::Config cfg = baseConfig("stall");
    cfg.writeBufBytes = 4096; // tiny outbox: a stalled peer trips fast
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    // The stalled client: warms the cache with one answered request,
    // then pipelines thousands of cache hits without ever reading.
    // Responses pile into its socket buffer, then into its bounded
    // outbox — at which point the daemon kicks it.
    SimClient stalled;
    ASSERT_TRUE(stalled.connect(server.socketPath()));
    ServeRequest warm = squareRequest(1, 1);
    warm.run.label = "stall";
    ServeResponse resp;
    ASSERT_TRUE(stalled.request(warm, &resp));
    ASSERT_TRUE(resp.ok) << resp.error;
    for (int i = 0; i < 4000; ++i) {
        ServeRequest hit = warm;
        hit.id = static_cast<std::uint64_t>(100 + i);
        if (!stalled.send(hit))
            break; // kicked mid-pipeline: exactly the point
    }

    // A healthy client keeps getting answers the whole time, and
    // eventually observes the stalled one's disconnect.
    SimClient healthy;
    ASSERT_TRUE(healthy.connect(server.socketPath()));
    ServeHealth h{};
    bool sawKick = false;
    for (int round = 0; round < 200 && !sawKick; ++round) {
        ServeRequest probe = squareRequest(
            static_cast<std::uint64_t>(10000 + round), 1);
        probe.run.label = "stall"; // cache hit: answered inline
        ServeResponse ok;
        ASSERT_TRUE(healthy.request(probe, &ok));
        ASSERT_TRUE(ok.ok) << ok.error;
        ASSERT_TRUE(healthy.health(&h));
        sawKick = h.slowDisconnects >= 1;
    }
    EXPECT_TRUE(sawKick) << "stalled reader was never disconnected";

    server.stop();
}

TEST_F(ServeTest, MidStreamDisconnectDoesNotKillTheDaemon)
{
    // The SIGPIPE regression: a client that submits work and vanishes
    // before reading must cost the daemon nothing but an EPIPE on that
    // one connection. (All daemon sends use MSG_NOSIGNAL; an unhandled
    // SIGPIPE would kill this whole test process.)
    SimServer server(baseConfig("pipe"));
    ASSERT_TRUE(server.start());

    {
        SimClient ghost;
        ASSERT_TRUE(ghost.connect(server.socketPath()));
        for (std::uint64_t id = 1; id <= 3; ++id)
            ASSERT_TRUE(ghost.send(squareRequest(id,
                                                 static_cast<int>(id))));
        ghost.close(); // gone before any answer
    }

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));
    ServeResponse resp;
    ASSERT_TRUE(client.request(squareRequest(50, 4), &resp));
    EXPECT_TRUE(resp.ok) << resp.error;

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST_F(ServeTest, StartRefusesToClobberALiveDaemon)
{
    SimServer::Config cfg = baseConfig("live");
    SimServer first(cfg);
    ASSERT_TRUE(first.start());

    // Second daemon on the same path: probe-connect finds the live
    // listener and refuses.
    SimServer usurper(cfg);
    EXPECT_FALSE(usurper.start());

    // The incumbent is unharmed.
    SimClient client;
    ASSERT_TRUE(client.connect(first.socketPath()));
    ServeResponse resp;
    ASSERT_TRUE(client.request(squareRequest(1), &resp));
    EXPECT_TRUE(resp.ok) << resp.error;
    client.close();

    // A crashed daemon's *stale* socket file, though, is taken over.
    first.abortStop();
    ASSERT_TRUE(std::filesystem::exists(cfg.socketPath));
    SimServer successor(cfg);
    EXPECT_TRUE(successor.start());
    ASSERT_TRUE(client.connect(successor.socketPath()));
    ASSERT_TRUE(client.request(squareRequest(2), &resp));
    EXPECT_TRUE(resp.ok) << resp.error;
    successor.stop();
}

TEST_F(ServeTest, HealthReportsTheDaemonPid)
{
    SimServer server(baseConfig("pid"));
    ASSERT_TRUE(server.start());
    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));
    ServeHealth h;
    ASSERT_TRUE(client.health(&h));
    // The server runs in this process, so the answer is our own pid.
    EXPECT_EQ(h.pid, static_cast<std::uint64_t>(getpid()));
    server.stop();
}

TEST_F(ServeTest, MetricsSnapshotStaysConsistentUnderConcurrentLoad)
{
    SimServer server(baseConfig("met"));
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));

    // A second connection hammers the metrics verb while the load
    // runs: every answer is one snapshot taken under the telemetry
    // lock, so the outcome counters must always sum to the completed
    // span count — never a torn read.
    std::atomic<bool> stopProbe{false};
    std::thread prober([&] {
        SimClient probe;
        if (!probe.connect(server.socketPath()))
            return;
        while (!stopProbe.load()) {
            ServeMetrics m;
            if (!probe.metrics(&m))
                break;
            const std::uint64_t outcomes =
                m.telemetry.outcomeOk + m.telemetry.outcomeCached +
                m.telemetry.outcomeFailed + m.telemetry.outcomeShed +
                m.telemetry.outcomeDeadline +
                m.telemetry.outcomeAbandoned;
            EXPECT_EQ(outcomes, m.telemetry.spansCompleted);
            EXPECT_LE(m.telemetry.spansCompleted,
                      m.telemetry.spansStarted);
        }
    });

    const int total = 24;
    for (int i = 0; i < total; ++i)
        ASSERT_TRUE(client.send(squareRequest(
            static_cast<std::uint64_t>(i + 1), 1 + i % 4)));
    for (int i = 0; i < total; ++i) {
        ServeResponse resp;
        ASSERT_TRUE(client.recvResponse(&resp));
        EXPECT_TRUE(resp.ok) << resp.error;
    }
    stopProbe.store(true);
    prober.join();

    // A span finalizes when its writer flushes the response bytes, a
    // hair after the client reads them: poll until all have settled.
    ServeMetrics m;
    bool settled = false;
    for (int round = 0; round < 1000 && !settled; ++round) {
        ASSERT_TRUE(client.metrics(&m));
        settled = m.telemetry.spansCompleted ==
                  static_cast<std::uint64_t>(total);
        if (!settled)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(settled);

    EXPECT_EQ(m.telemetry.spansStarted,
              static_cast<std::uint64_t>(total));
    EXPECT_EQ(m.telemetry.outcomeOk + m.telemetry.outcomeCached,
              static_cast<std::uint64_t>(total));
    EXPECT_EQ(m.stats.requests, static_cast<std::uint64_t>(total));
    EXPECT_EQ(m.health.pid, static_cast<std::uint64_t>(getpid()));
    EXPECT_FALSE(m.health.engineVersion.empty());

    // Everything completed within the last minute, so the 60 s e2e
    // window holds every span; horizons and quantiles are monotone.
    EXPECT_EQ(m.telemetry.e2e.w60s.count,
              static_cast<std::uint64_t>(total));
    EXPECT_LE(m.telemetry.e2e.w1s.count, m.telemetry.e2e.w10s.count);
    EXPECT_LE(m.telemetry.e2e.w10s.count, m.telemetry.e2e.w60s.count);
    EXPECT_LE(m.telemetry.e2e.w60s.p50, m.telemetry.e2e.w60s.p95);
    EXPECT_LE(m.telemetry.e2e.w60s.p95, m.telemetry.e2e.w60s.p99);
    EXPECT_GT(m.telemetry.e2e.w60s.p99, 0.0);
    // All asks rode the default interactive lane.
    EXPECT_EQ(m.telemetry.laneInteractive.w60s.count,
              static_cast<std::uint64_t>(total));
    EXPECT_EQ(m.telemetry.laneBulk.w60s.count, 0u);

    server.stop();
}

TEST_F(ServeTest, PrometheusExpositionIsWellFormed)
{
    SimServer server(baseConfig("prom"));
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));
    ServeResponse resp;
    ASSERT_TRUE(client.request(squareRequest(1), &resp));
    EXPECT_TRUE(resp.ok) << resp.error;

    std::string body;
    ASSERT_TRUE(client.metricsPrometheus(&body));
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body.back(), '\n');
    EXPECT_NE(
        body.find("# TYPE cpelide_serve_requests_total counter"),
        std::string::npos);
    EXPECT_NE(body.find("cpelide_serve_latency_microseconds{"),
              std::string::npos);
    EXPECT_NE(body.find("quantile=\"0.99\""), std::string::npos);
    EXPECT_NE(body.find("cpelide_serve_queue_depth{"),
              std::string::npos);

    // Every line is a comment or `name[{labels}] value` with a
    // numeric value — the exposition-format skeleton.
    std::size_t start = 0;
    while (start < body.size()) {
        std::size_t end = body.find('\n', start);
        ASSERT_NE(end, std::string::npos); // body ends with \n
        const std::string line = body.substr(start, end - start);
        start = end + 1;
        ASSERT_FALSE(line.empty());
        if (line[0] == '#')
            continue;
        EXPECT_TRUE((line[0] >= 'a' && line[0] <= 'z') || line[0] == '_')
            << line;
        const std::size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        char *endp = nullptr;
        std::strtod(line.c_str() + sp + 1, &endp);
        EXPECT_EQ(*endp, '\0') << line;
    }

    server.stop();
}

TEST_F(ServeTest, SlowLogEmitsJsonlRecords)
{
    SimServer::Config cfg = baseConfig("slow");
    cfg.slowlogMs = 1; // everything that actually simulates is slower
    cfg.slowlogPath = std::string(::testing::TempDir()) + "sd_slow_" +
                      std::to_string(getpid()) + ".jsonl";
    std::remove(cfg.slowlogPath.c_str());
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));
    ServeRequest req = squareRequest(1, 4);
    req.run.scale = 0.2;
    req.run.label = "slowish";
    ServeResponse resp;
    ASSERT_TRUE(client.request(req, &resp));
    EXPECT_TRUE(resp.ok) << resp.error;
    server.stop(); // joins the writers: the record is on disk

    std::ifstream in(cfg.slowlogPath);
    ASSERT_TRUE(in.good()) << cfg.slowlogPath;
    bool sawRecord = false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"event\":\"slow\"") == std::string::npos)
            continue;
        sawRecord = true;
        EXPECT_NE(line.find("\"label\":\"slowish\""),
                  std::string::npos) << line;
        EXPECT_NE(line.find("\"outcome\":\"ok\""), std::string::npos)
            << line;
        EXPECT_NE(line.find("\"e2eMs\":"), std::string::npos) << line;
    }
    EXPECT_TRUE(sawRecord);
    std::remove(cfg.slowlogPath.c_str());
}

TEST_F(ServeTest, SpanChainTracesARequestEndToEnd)
{
    SimServer::Config cfg = baseConfig("span");
    cfg.traceSpans = true;
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));
    ServeRequest req = squareRequest(1, 2);
    req.run.label = "traced";
    ServeResponse first, second;
    ASSERT_TRUE(client.request(req, &first));
    EXPECT_TRUE(first.ok) << first.error;
    req.id = 2;
    ASSERT_TRUE(client.request(req, &second));
    EXPECT_TRUE(second.ok) << second.error;
    EXPECT_TRUE(second.cached);
    server.stop();

    // One trace, correlated by the span tag: the miss walks
    // accept -> miss -> queue -> sim -> write, the repeat walks
    // accept -> hit -> write — each stage on its named track.
    bool sawAccept = false, sawMiss = false, sawQueue = false;
    bool sawSim = false, sawWrite = false, sawHit = false;
    for (const TraceEvent &e : server.telemetryEvents()) {
        if (e.name == "accept req#1")
            sawAccept = true;
        if (e.name == "miss req#1")
            sawMiss = true;
        if (e.name == "queue req#1") {
            sawQueue = true;
            EXPECT_EQ(e.tid, kServeTrackQueue);
        }
        if (e.name.rfind("sim req#1", 0) == 0) {
            sawSim = true;
            EXPECT_EQ(e.tid, kServeTrackLaneInteractive);
            EXPECT_NE(e.name.find("traced"), std::string::npos);
        }
        if (e.name == "write req#1") {
            sawWrite = true;
            EXPECT_EQ(e.tid, kServeTrackWriters);
        }
        if (e.name == "hit req#2")
            sawHit = true;
    }
    EXPECT_TRUE(sawAccept);
    EXPECT_TRUE(sawMiss);
    EXPECT_TRUE(sawQueue);
    EXPECT_TRUE(sawSim);
    EXPECT_TRUE(sawWrite);
    EXPECT_TRUE(sawHit);
}

} // namespace
