/** @file Workload-suite invariants, parameterized over all 24 apps. */

#include <gtest/gtest.h>

#include <set>

#include "harness/harness.hh"
#include "workloads/graph.hh"
#include "workloads/workload.hh"

namespace cpelide
{
namespace
{

TEST(WorkloadRegistry, Has24TableIIWorkloads)
{
    EXPECT_EQ(allWorkloadFactories().size(), 24u);
    const auto names = workloadNames();
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), 24u);
    EXPECT_THROW(makeWorkload("nope"), FatalError);
    EXPECT_EQ(makeWorkload("Square")->info().name, "Square");
}

TEST(WorkloadRegistry, ReuseGroupsMatchTableII)
{
    int high = 0, low = 0;
    for (const auto &f : allWorkloadFactories())
        (f()->info().highReuse ? high : low)++;
    EXPECT_EQ(high, 18); // 16 apps, RNNs counted twice (two inputs)
    EXPECT_EQ(low, 6);
}

TEST(CsrGraph, DeterministicAndWellFormed)
{
    auto a = CsrGraph::synthesize(1000, 8, 0.5, 42);
    auto b = CsrGraph::synthesize(1000, 8, 0.5, 42);
    EXPECT_EQ(a->cols, b->cols);
    EXPECT_EQ(a->rowOffsets, b->rowOffsets);
    ASSERT_EQ(a->rowOffsets.size(), 1001u);
    EXPECT_EQ(a->rowOffsets.front(), 0u);
    EXPECT_EQ(a->rowOffsets.back(), a->numEdges());
    for (std::uint32_t v : a->cols)
        EXPECT_LT(v, 1000u);
    // Average degree in the requested ballpark.
    EXPECT_GT(a->numEdges(), 6000u);
    EXPECT_LT(a->numEdges(), 10000u);
}

/**
 * Every workload, on every protocol, must complete with zero stale
 * reads (the checker aborts otherwise) and stay within the paper's
 * tracking bounds. Run at a small scale on a 2-chiplet GPU to keep
 * this suite fast.
 */
class WorkloadConformance
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadConformance, CpElideIsCoherentAndBounded)
{
    const RunResult r = run({.workload = GetParam(),
                             .protocol = ProtocolKind::CpElide,
                             .chiplets = 2,
                             .scale = 0.25});
    EXPECT_EQ(r.staleReads, 0u) << GetParam();
    EXPECT_GT(r.kernels, 0u);
    EXPECT_GT(r.accesses, 0u);
    // Table II: at most 11 live coherence-table entries, no overflow.
    EXPECT_LE(r.tableMaxEntries, 11u) << GetParam();
}

TEST_P(WorkloadConformance, BaselineAndHmgAreCoherent)
{
    const RunResult b = run({.workload = GetParam(),
                             .protocol = ProtocolKind::Baseline,
                             .chiplets = 2,
                             .scale = 0.2});
    EXPECT_EQ(b.staleReads, 0u);
    const RunResult h = run({.workload = GetParam(),
                             .protocol = ProtocolKind::Hmg,
                             .chiplets = 2,
                             .scale = 0.2});
    EXPECT_EQ(h.staleReads, 0u);
    // The same trace is replayed in both configurations.
    EXPECT_EQ(b.accesses, h.accesses);
    EXPECT_EQ(b.kernels, h.kernels);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadConformance,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &p) {
        std::string name = p.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace cpelide
