/** @file EventQueue, RNG, and simulation-budget unit tests. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "sim/sim_budget.hh"

namespace cpelide
{
namespace
{

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleAfter(4, [&] {
            ++fired;
            EXPECT_EQ(q.now(), 5u);
        });
    });
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, AdvanceToMovesTimeForward)
{
    EventQueue q;
    q.advanceTo(100);
    EXPECT_EQ(q.now(), 100u);
    q.advanceTo(50); // never backwards
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, StepReturnsPerEvent)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.size(), 2u);
    EXPECT_TRUE(q.step());
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    // Regression: an event before now() would silently reorder time
    // (the queue pops by timestamp); it must fail loudly instead.
    EventQueue q;
    q.advanceTo(100);
    EXPECT_THROW(q.schedule(99, [] {}), SimPanicError);
    q.schedule(100, [] {}); // exactly now() is fine
    q.run();
}

TEST(SimBudget, DisabledByDefaultAndFromEmptyEnv)
{
    unsetenv("CPELIDE_TIMEOUT_MS");
    unsetenv("CPELIDE_MAX_EVENTS");
    EXPECT_FALSE(SimBudget{}.enabled());
    EXPECT_FALSE(SimBudget::fromEnv().enabled());

    setenv("CPELIDE_TIMEOUT_MS", "1500", 1);
    setenv("CPELIDE_MAX_EVENTS", "123456", 1);
    const SimBudget b = SimBudget::fromEnv();
    EXPECT_TRUE(b.enabled());
    EXPECT_DOUBLE_EQ(b.maxWallMs, 1500.0);
    EXPECT_EQ(b.maxEvents, 123456u);
    unsetenv("CPELIDE_TIMEOUT_MS");
    unsetenv("CPELIDE_MAX_EVENTS");
}

TEST(SimBudget, ChargeWithoutScopeIsNoop)
{
    EXPECT_FALSE(BudgetGuard::active());
    BudgetGuard::charge(1000000); // must not throw
}

TEST(SimBudget, EventBudgetThrowsBudgetError)
{
    SimBudget budget;
    budget.maxEvents = 100;
    BudgetGuard guard(budget);
    EXPECT_TRUE(BudgetGuard::active());
    for (int i = 0; i < 100; ++i)
        BudgetGuard::charge();
    EXPECT_THROW(BudgetGuard::charge(), BudgetError);
}

TEST(SimBudget, WatchdogCancelThrowsTimeoutError)
{
    BudgetGuard guard(SimBudget{});
    BudgetGuard::charge(); // fine until someone cancels
    guard.state()->cancel = true;
    try {
        BudgetGuard::charge();
        FAIL() << "expected TimeoutError";
    } catch (const TimeoutError &e) {
        EXPECT_NE(std::string(e.what()).find("cancelled"),
                  std::string::npos);
    }
}

TEST(SimBudget, ScopesNestAndRestore)
{
    SimBudget outerBudget;
    outerBudget.maxEvents = 5;
    BudgetGuard outer(outerBudget);
    {
        // The inner scope is unlimited: charges must not hit the
        // outer budget.
        BudgetGuard inner{SimBudget{}};
        BudgetGuard::charge(1000);
    }
    // Outer is active again and still within its own budget.
    for (int i = 0; i < 5; ++i)
        BudgetGuard::charge();
    EXPECT_THROW(BudgetGuard::charge(), BudgetError);
}

TEST(SimBudget, EventQueueChargesTheActiveBudget)
{
    SimBudget budget;
    budget.maxEvents = 4;
    BudgetGuard guard(budget);
    EventQueue q;
    for (int i = 0; i < 8; ++i)
        q.schedule(i + 1, [] {});
    EXPECT_THROW(q.run(), BudgetError);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        sawLo |= v == 3;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

} // namespace
} // namespace cpelide
