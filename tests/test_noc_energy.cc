/** @file Noc flit accounting and EnergyModel tests. */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "noc/noc.hh"

namespace cpelide
{
namespace
{

TEST(Noc, FlitCategoriesAccumulate)
{
    Noc n(4);
    n.countL1L2Data();
    n.countL1L2Ctrl();
    n.countL2L3Data();
    n.countRemoteData();
    n.countRemoteCtrl();
    EXPECT_EQ(n.flits().l1l2, kDataFlits + kCtrlFlits);
    EXPECT_EQ(n.flits().l2l3, kDataFlits);
    EXPECT_EQ(n.flits().remote, kDataFlits + kCtrlFlits);
    EXPECT_EQ(n.flits().total(),
              2 * kDataFlits + 2 * kCtrlFlits + kDataFlits);
}

TEST(Noc, PerKernelByteMetersReset)
{
    Noc n(2);
    n.addDramBytes(0, 128);
    n.addXlinkBytes(1, 64);
    n.addL2l3Bytes(0, 256);
    EXPECT_EQ(n.dramBytes(0), 128u);
    EXPECT_EQ(n.xlinkBytes(1), 64u);
    EXPECT_EQ(n.l2l3Bytes(0), 256u);
    n.beginKernel();
    EXPECT_EQ(n.dramBytes(0), 0u);
    EXPECT_EQ(n.xlinkBytes(1), 0u);
    EXPECT_EQ(n.l2l3Bytes(0), 0u);
    // Flit totals survive kernel boundaries (whole-run counters).
    n.countRemoteData();
    EXPECT_EQ(n.flits().remote, kDataFlits);
}

TEST(Energy, ComponentsChargedIndependently)
{
    EnergyModel e;
    e.countL1d(10);
    e.countL2(2);
    e.countDram(1);
    e.countFlits(100);
    const EnergyBreakdown &b = e.breakdown();
    EXPECT_DOUBLE_EQ(b.l1d, 10 * e.params().l1dAccessPj);
    EXPECT_DOUBLE_EQ(b.l2, 2 * e.params().l2AccessPj);
    EXPECT_DOUBLE_EQ(b.dram, e.params().dramLinePj);
    EXPECT_DOUBLE_EQ(b.noc, 100 * e.params().nocFlitPj);
    EXPECT_DOUBLE_EQ(b.total(),
                     b.l1i + b.l1d + b.lds + b.l2 + b.noc + b.dram);
}

TEST(Energy, RatiosFollowTheHierarchy)
{
    // The relative ordering is what Fig 9 depends on.
    EnergyParams p;
    EXPECT_LT(p.l1dAccessPj, p.l2AccessPj);
    EXPECT_LT(p.l2AccessPj, p.l3AccessPj);
    EXPECT_LT(p.l3AccessPj, p.dramLinePj);
    EXPECT_LT(p.ldsAccessPj, p.l2AccessPj);
}

TEST(Energy, BreakdownAccumulatesWithPlusEquals)
{
    EnergyModel a, b;
    a.countL2(3);
    b.countDram(2);
    EnergyBreakdown sum = a.breakdown();
    sum += b.breakdown();
    EXPECT_DOUBLE_EQ(sum.l2, 3 * a.params().l2AccessPj);
    EXPECT_DOUBLE_EQ(sum.dram, 2 * a.params().dramLinePj);
}

} // namespace
} // namespace cpelide
