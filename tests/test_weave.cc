/**
 * @file
 * Bound/weave intra-run parallelism tests (gpu/weave.hh).
 *
 * The contract under test is absolute: a run with CPELIDE_SIM_THREADS
 * (or RunRequest::simThreads) set to ANY value produces a RunResult
 * byte-identical to the serial run — every counter, every stall bin,
 * every kernel-phase record, every trace event. The design makes this
 * true by construction (parallel trace *generation* into skew buffers,
 * serial in-order *replay* through the shared memory system), and
 * these tests pin the construction down across every protocol, plus
 * the checker / validator / fault-injection / multi-stream variants
 * that exercise the replay path's side doors.
 *
 * Also covered: the SkewBuffer primitive itself (back-pressure, abort,
 * error transport), the EventQueue horizon/ownership additions, and
 * the CPELIDE_SIM_THREADS knob parse.
 */

#include <atomic>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/gpu_system.hh"
#include "harness/harness.hh"
#include "prof/registry.hh"
#include "prof/snapshot.hh"
#include "sim/event_queue.hh"
#include "sim/exec_options.hh"
#include "sim/fault_injector.hh"
#include "sim/log.hh"
#include "sim/skew_buffer.hh"
#include "stats/run_result_io.hh"
#include "trace/trace.hh"

using namespace cpelide;

namespace
{

constexpr double kScale = 0.05;

/**
 * Every result-affecting byte of a run, flattened to one string: the
 * full journal field set (counters, stall bins, sim-event count),
 * the per-kernel phase records, and the complete trace-event stream.
 */
std::string
fingerprint(const RunResult &r, const std::vector<TraceEvent> &events)
{
    std::string fp;
    appendRunResultFields(fp, r);
    fp += "|phases=" + encodeKernelPhasesCompact(r.kernelPhases);
    for (const TraceEvent &e : events) {
        fp += "|" + std::to_string(static_cast<int>(e.kind)) + ":" +
              e.name + ":" + e.cat + ":" + std::to_string(e.tid) +
              ":" + std::to_string(e.ts) + ":" +
              std::to_string(e.dur);
        for (const auto &kv : e.args)
            fp += "," + kv.first + "=" + std::to_string(kv.second);
    }
    return fp;
}

/** Run @p req with a caller-owned trace session and fingerprint it. */
std::string
fingerprintRun(RunRequest req)
{
    TraceSession session;
    req.trace = &session;
    const RunResult r = run(req);
    return fingerprint(r, session.take());
}

} // namespace

TEST(Weave, ByteIdenticalAcrossThreadCountsEveryProtocol)
{
    for (ProtocolKind kind :
         {ProtocolKind::Baseline, ProtocolKind::CpElide,
          ProtocolKind::Hmg, ProtocolKind::HmgWriteBack,
          ProtocolKind::Monolithic}) {
        const RunRequest base{.workload = "Square",
                              .protocol = kind,
                              .chiplets = 4,
                              .scale = kScale};
        const std::string serial = fingerprintRun(base);
        for (int threads : {2, 8}) {
            RunRequest req = base;
            req.simThreads = threads;
            EXPECT_EQ(fingerprintRun(req), serial)
                << protocolName(kind) << " simThreads=" << threads;
        }
    }
}

TEST(Weave, ByteIdenticalOnIrregularWorkload)
{
    // BFS: data-dependent per-WG footprints, so chunk streams are
    // ragged and the weave order actually matters.
    for (ProtocolKind kind :
         {ProtocolKind::Baseline, ProtocolKind::CpElide}) {
        const RunRequest base{.workload = "BFS",
                              .protocol = kind,
                              .chiplets = 4,
                              .scale = kScale};
        RunRequest par = base;
        par.simThreads = 8;
        EXPECT_EQ(fingerprintRun(par), fingerprintRun(base))
            << protocolName(kind);
    }
}

TEST(Weave, ByteIdenticalWithMultiStreamCopies)
{
    const RunRequest base{.workload = "Square",
                          .protocol = ProtocolKind::Baseline,
                          .chiplets = 4,
                          .scale = kScale,
                          .copies = 2};
    RunRequest par = base;
    par.simThreads = 8;
    EXPECT_EQ(fingerprintRun(par), fingerprintRun(base));
}

TEST(Weave, HbCheckerCleanAndIdenticalUnderWeave)
{
    RunOptions opts;
    opts.protocol = ProtocolKind::CpElide;
    opts.check = true;
    const RunRequest base{.workload = "Square",
                          .protocol = ProtocolKind::CpElide,
                          .chiplets = 4,
                          .scale = kScale,
                          .options = opts};

    TraceSession s1;
    RunRequest serial = base;
    serial.trace = &s1;
    const RunResult r1 = run(serial);
    EXPECT_EQ(r1.hbViolations, 0u);

    TraceSession s2;
    RunRequest par = base;
    par.simThreads = 8;
    par.trace = &s2;
    const RunResult r2 = run(par);
    EXPECT_EQ(r2.hbViolations, 0u);

    EXPECT_EQ(fingerprint(r2, s2.take()), fingerprint(r1, s1.take()));
}

TEST(Weave, AnnotationValidatorRunsInBoundPhase)
{
    RunOptions opts;
    opts.protocol = ProtocolKind::CpElide;
    opts.validateAnnotations = true;
    const RunRequest base{.workload = "Square",
                          .protocol = ProtocolKind::CpElide,
                          .chiplets = 4,
                          .scale = kScale,
                          .options = opts};
    RunRequest par = base;
    par.simThreads = 8;
    EXPECT_EQ(fingerprintRun(par), fingerprintRun(base));
}

TEST(Weave, FaultInjectionCampaignIdenticalUnderWeave)
{
    // The injector is consulted during *replay* (sync ops and
    // launches), which stays serial and in order — so a deterministic
    // campaign must fire at the same op indices and produce the same
    // findings at any thread count. Two injector instances, one per
    // run: the injector itself is stateful.
    FaultPlan plan;
    plan.dropFlushAt = {1, 3};
    plan.skipInvalidateAt = {2};

    FaultInjector fiSerial{plan};
    RunOptions optsSerial;
    optsSerial.protocol = ProtocolKind::Baseline;
    optsSerial.faultInjector = &fiSerial;
    const std::string serial =
        fingerprintRun({.workload = "Square",
                        .protocol = ProtocolKind::Baseline,
                        .chiplets = 4,
                        .scale = kScale,
                        .options = optsSerial});

    FaultInjector fiPar{plan};
    RunOptions optsPar = optsSerial;
    optsPar.faultInjector = &fiPar;
    optsPar.simThreads = 8;
    const std::string par =
        fingerprintRun({.workload = "Square",
                        .protocol = ProtocolKind::Baseline,
                        .chiplets = 4,
                        .scale = kScale,
                        .options = optsPar});
    EXPECT_EQ(par, serial);
}

TEST(Weave, CountersProveTheParallelPathEngaged)
{
    // Guard against the failure mode where every byte-identity test
    // above passes because the weave silently never ran.
    prof::ProfRegistry reg;
    RunOptions opts;
    opts.protocol = ProtocolKind::CpElide;
    opts.prof = &reg;
    opts.simThreads = 4;
    // Inspect the harvested RunResult::prof snapshot, not the registry:
    // the registry's gauges point into the run's (now destroyed)
    // components, so the harness freezes the snapshot while the run is
    // still alive.
    const RunResult r = run({.workload = "Square",
                             .protocol = ProtocolKind::CpElide,
                             .chiplets = 4,
                             .scale = kScale,
                             .options = opts});
    std::uint64_t parallelKernels = 0;
    std::uint64_t replayedOps = 0;
    for (const prof::CounterSnap &c : r.prof.counters) {
        if (c.name == "weave/parallel-kernels")
            parallelKernels = c.value;
        if (c.name == "weave/replayed-ops")
            replayedOps = c.value;
    }
    EXPECT_GE(parallelKernels, 1u);
    EXPECT_GE(replayedOps, 1u);
}

TEST(Weave, SerialRunRegistersNoWeaveCounters)
{
    prof::ProfRegistry reg;
    RunOptions opts;
    opts.protocol = ProtocolKind::CpElide;
    opts.prof = &reg;
    opts.simThreads = 1;
    const RunResult r = run({.workload = "Square",
                             .protocol = ProtocolKind::CpElide,
                             .chiplets = 4,
                             .scale = kScale,
                             .options = opts});
    ASSERT_FALSE(r.prof.empty());
    for (const prof::CounterSnap &c : r.prof.counters)
        EXPECT_NE(c.name.rfind("weave/", 0), 0u) << c.name;
}

// ---------------------------------------------------------------------
// SkewBuffer primitive
// ---------------------------------------------------------------------

TEST(SkewBuffer, DeliversBatchesInFifoOrder)
{
    SkewBuffer buf(1024);
    buf.push({ReplayOp{ReplayOp::Kind::Touch, true, 1, 10}});
    buf.push({ReplayOp{ReplayOp::Kind::ChunkEnd}});
    const auto a = buf.pop();
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0].kind, ReplayOp::Kind::Touch);
    EXPECT_EQ(a[0].ds, 1);
    EXPECT_EQ(a[0].line, 10u);
    EXPECT_TRUE(a[0].write);
    const auto b = buf.pop();
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].kind, ReplayOp::Kind::ChunkEnd);
}

TEST(SkewBuffer, OversizedBatchAcceptedWhenEmpty)
{
    // A batch larger than the whole horizon must not deadlock: an
    // empty buffer accepts it whole.
    SkewBuffer buf(4);
    std::vector<ReplayOp> big(10);
    buf.push(std::move(big));
    EXPECT_EQ(buf.pop().size(), 10u);
    EXPECT_EQ(buf.peakOps(), 10u);
}

TEST(SkewBuffer, HorizonBackpressureBlocksProducerUntilPop)
{
    SkewBuffer buf(4);
    buf.push(std::vector<ReplayOp>(3));

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        buf.push(std::vector<ReplayOp>(3)); // 3 + 3 > 4: blocks
        pushed = true;
    });
    // Bounded wait: the producer must still be blocked.
    for (int i = 0; i < 50 && !pushed.load(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_FALSE(pushed.load());

    EXPECT_EQ(buf.pop().size(), 3u); // frees the horizon
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_GE(buf.horizonStalls(), 1u);
    EXPECT_EQ(buf.pop().size(), 3u);
}

TEST(SkewBuffer, AbortUnblocksProducerWithSkewAborted)
{
    SkewBuffer buf(4);
    buf.push(std::vector<ReplayOp>(4));

    std::atomic<bool> aborted{false};
    std::thread producer([&] {
        try {
            buf.push(std::vector<ReplayOp>(4)); // blocks, then aborts
        } catch (const SkewAborted &) {
            aborted = true;
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    buf.abort();
    producer.join();
    EXPECT_TRUE(aborted.load());
    // Every subsequent push fails fast too.
    EXPECT_THROW(buf.push(std::vector<ReplayOp>(1)), SkewAborted);
}

TEST(SkewBuffer, ErrorMarkerTransportsTheProducerException)
{
    SkewBuffer buf(1024);
    buf.setError(std::make_exception_ptr(
        std::runtime_error("trace generator exploded")));
    buf.push({ReplayOp{ReplayOp::Kind::Error}});

    const auto batch = buf.pop();
    ASSERT_EQ(batch.size(), 1u);
    ASSERT_EQ(batch[0].kind, ReplayOp::Kind::Error);
    ASSERT_NE(buf.error(), nullptr);
    try {
        std::rethrow_exception(buf.error());
        FAIL() << "expected the stored exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "trace generator exploded");
    }
}

// ---------------------------------------------------------------------
// EventQueue horizon drain + thread pinning
// ---------------------------------------------------------------------

TEST(EventQueue, RunUntilDrainsOnlyThroughTheHorizon)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(5, [&] { fired.push_back(5); });
    q.schedule(10, [&] { fired.push_back(10); });
    q.schedule(15, [&] { fired.push_back(15); });

    EXPECT_EQ(q.runUntil(10), 10u);
    EXPECT_EQ(fired, (std::vector<int>{5, 10}));
    EXPECT_EQ(q.now(), 10u);

    // An empty horizon still advances time deterministically.
    EXPECT_EQ(q.runUntil(12), 12u);
    EXPECT_EQ(q.runUntil(20), 20u);
    EXPECT_EQ(fired, (std::vector<int>{5, 10, 15}));
}

TEST(EventQueue, PinnedQueueRejectsCrossThreadDrive)
{
    EventQueue q;
    q.pinOwner();
    q.schedule(1, [] {}); // owner thread: fine

    std::atomic<bool> panicked{false};
    std::thread other([&] {
        try {
            q.schedule(2, [] {});
        } catch (const SimPanicError &) {
            panicked = true;
        }
    });
    other.join();
    EXPECT_TRUE(panicked.load());

    // unpin() restores the free-threaded default (and lets this
    // thread drain the event we scheduled).
    q.unpin();
    std::thread third([&] { q.run(); });
    third.join();
    EXPECT_EQ(q.now(), 1u);
}

// ---------------------------------------------------------------------
// Knob plumbing
// ---------------------------------------------------------------------

TEST(ExecOptionsKnob, SimThreadsParsesAndClamps)
{
    ASSERT_EQ(setenv("CPELIDE_SIM_THREADS", "8", 1), 0);
    EXPECT_EQ(ExecOptions::fromEnv().simThreads, 8);
    ASSERT_EQ(setenv("CPELIDE_SIM_THREADS", "999", 1), 0);
    EXPECT_EQ(ExecOptions::fromEnv().simThreads, 256); // clamped
    ASSERT_EQ(setenv("CPELIDE_SIM_THREADS", "0", 1), 0);
    EXPECT_EQ(ExecOptions::fromEnv().simThreads, 1); // non-positive
    ASSERT_EQ(setenv("CPELIDE_SIM_THREADS", "banana", 1), 0);
    EXPECT_EQ(ExecOptions::fromEnv().simThreads, 1); // unparsable
    unsetenv("CPELIDE_SIM_THREADS");
    EXPECT_EQ(ExecOptions::fromEnv().simThreads, 1);
}

TEST(ExecOptionsKnob, EnvDrivesTheWeaveWhenRequestLeavesDefault)
{
    // simThreads = 0 on the request defers to CPELIDE_SIM_THREADS;
    // the env-driven run must still be byte-identical to serial.
    const RunRequest base{.workload = "Square",
                          .protocol = ProtocolKind::CpElide,
                          .chiplets = 4,
                          .scale = kScale};
    const std::string serial = fingerprintRun(base);
    ASSERT_EQ(setenv("CPELIDE_SIM_THREADS", "4", 1), 0);
    const std::string par = fingerprintRun(base);
    unsetenv("CPELIDE_SIM_THREADS");
    EXPECT_EQ(par, serial);
}
