/**
 * @file
 * Regression tests for the paper's qualitative claims (the orderings
 * EXPERIMENTS.md reports), at reduced scale so the suite stays fast.
 * If a model change flips one of these, a headline result of the
 * reproduction silently broke — these tests make that loud.
 */

#include <gtest/gtest.h>

#include "harness/harness.hh"

namespace cpelide
{
namespace
{

constexpr double kScale = 0.4;

struct Trio
{
    RunResult base, elide, hmg;
};

Trio
run(const std::string &name, int chiplets = 4)
{
    const auto one = [&](ProtocolKind kind) {
        return cpelide::run({.workload = name,
                             .protocol = kind,
                             .chiplets = chiplets,
                             .scale = kScale});
    };
    return {one(ProtocolKind::Baseline), one(ProtocolKind::CpElide),
            one(ProtocolKind::Hmg)};
}

double
speedup(const RunResult &ref, const RunResult &x)
{
    return static_cast<double>(ref.cycles) /
           static_cast<double>(x.cycles);
}

TEST(PaperClaims, StreamingCpElideBeatsBothAndHmgTrailsBaseline)
{
    // Section V-B: BabelStream/Square — CPElide elides everything;
    // HMG's write-through L2s make it slightly worse than Baseline.
    for (const char *name : {"Square", "BabelStream"}) {
        const Trio t = run(name);
        EXPECT_GT(speedup(t.base, t.elide), 1.25) << name;
        EXPECT_GT(speedup(t.hmg, t.elide), 1.25) << name;
        EXPECT_LT(speedup(t.base, t.hmg), 1.05) << name;
    }
}

TEST(PaperClaims, LowReuseCpElideNeverHurts)
{
    // Section V-A: "CPElide and Baseline perform similarly for
    // workloads with limited or no inter-kernel reuse."
    for (const char *name : {"BTree", "NW", "DWT2D", "SRAD_v2"}) {
        const Trio t = run(name);
        EXPECT_GT(speedup(t.base, t.elide), 0.97) << name;
    }
}

TEST(PaperClaims, DirectoryPathologyMakesHmgLoseOnBtree)
{
    // Section V-B: "Baseline outperforms HMG for these workloads".
    const Trio t = run("BTree");
    EXPECT_LT(speedup(t.base, t.hmg), 1.0);
}

TEST(PaperClaims, RnnRemoteReadCachingFavoursHmg)
{
    // Section V-B: HMG slightly outperforms CPElide for the RNNs.
    const Trio t = run("RNN-LSTM-l");
    EXPECT_GT(speedup(t.elide, t.hmg), 1.0);
    // ...but CPElide still beats the Baseline there.
    EXPECT_GT(speedup(t.base, t.elide), 1.0);
}

TEST(PaperClaims, GraphAdjacencyReuseHelpsCpElide)
{
    // Section V-A: avoiding unnecessary acquires preserves read-only
    // adjacency reuse for the graph workloads.
    for (const char *name : {"Color-max", "SSSP"}) {
        const Trio t = run(name);
        EXPECT_GT(speedup(t.base, t.elide), 1.0) << name;
        EXPECT_GT(t.elide.l2.hitRate(), t.base.l2.hitRate()) << name;
    }
}

TEST(PaperClaims, MonolithicUpperBoundsEveryConfig)
{
    // Fig 2: the equivalent monolithic GPU is the reference the
    // chiplet Baseline loses to (and CPElide can approach but not
    // meaningfully beat).
    for (const char *name : {"Square", "Hotspot3D", "Backprop"}) {
        const auto one = [name](ProtocolKind kind) {
            return cpelide::run({.workload = name,
                                 .protocol = kind,
                                 .chiplets = 4,
                                 .scale = kScale});
        };
        const RunResult mono = one(ProtocolKind::Monolithic);
        const RunResult base = one(ProtocolKind::Baseline);
        const RunResult elide = one(ProtocolKind::CpElide);
        EXPECT_LT(mono.cycles, base.cycles) << name;
        EXPECT_LE(static_cast<double>(mono.cycles),
                  1.05 * static_cast<double>(elide.cycles))
            << name;
    }
}

TEST(PaperClaims, CpElideCutsEnergyAndTraffic)
{
    // Figs 9/10 direction for a reuse-heavy workload.
    const Trio t = run("Backprop");
    EXPECT_LT(t.elide.energy.total(), t.base.energy.total());
    EXPECT_LT(t.elide.flits.total(), t.base.flits.total());
    EXPECT_LT(t.elide.flits.l2l3, t.hmg.flits.l2l3);
}

TEST(PaperClaims, TrendsHoldAtSevenChiplets)
{
    // Fig 8 rightmost group: the orderings survive at 7 chiplets.
    const Trio t = run("Square", 7);
    EXPECT_GT(speedup(t.base, t.elide), 1.15);
    EXPECT_GT(speedup(t.hmg, t.elide), 1.15);
}

} // namespace
} // namespace cpelide
