/**
 * @file
 * Happens-before checker tests (check/hb_checker.hh).
 *
 * Two obligations, mirroring the fault-injection suite's structure:
 *
 *   - soundness: with no faults injected, the checker reports ZERO
 *     violations on every protocol, including CPElide whose whole
 *     point is eliding most sync ops (no false positives);
 *   - completeness: every observable corruption the fault injector can
 *     produce (dropped flushes, skipped invalidates, coherence-table
 *     corruption) is reported, and the report's edge trace names the
 *     exact missing release/acquire edge and whether it was elided or
 *     lost to a fault.
 *
 * Plus unit tests for the VectorClock the checker is built on.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "check/hb_checker.hh"
#include "check/vector_clock.hh"
#include "gpu/gpu_system.hh"
#include "harness/harness.hh"
#include "sim/fault_injector.hh"
#include "sim/log.hh"

namespace cpelide
{
namespace
{

// ---------------------------------------------------------------------------
// VectorClock
// ---------------------------------------------------------------------------

TEST(VectorClock, StartsAtZeroAndAdvancesPerComponent)
{
    VectorClock vc(3);
    EXPECT_EQ(vc.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(vc.of(i), 0u);
    vc.advance(1);
    vc.advance(1);
    vc.advance(2);
    EXPECT_EQ(vc.of(0), 0u);
    EXPECT_EQ(vc.of(1), 2u);
    EXPECT_EQ(vc.of(2), 1u);
}

TEST(VectorClock, JoinIsComponentwiseMax)
{
    VectorClock a(3);
    VectorClock b(3);
    a.advance(0);
    a.advance(0); // a = [2,0,0]
    b.advance(1); // b = [0,1,0]
    a.join(b);
    EXPECT_EQ(a.of(0), 2u);
    EXPECT_EQ(a.of(1), 1u);
    EXPECT_EQ(a.of(2), 0u);
    // Join is idempotent and monotone.
    const VectorClock before = a;
    a.join(b);
    EXPECT_TRUE(a == before);
}

TEST(VectorClock, LeqIsThePartialOrder)
{
    VectorClock a(2);
    VectorClock b(2);
    EXPECT_TRUE(a.leq(b));
    a.advance(0); // a = [1,0]
    b.advance(1); // b = [0,1]
    EXPECT_FALSE(a.leq(b));
    EXPECT_FALSE(b.leq(a)); // concurrent
    b.join(a);               // b = [1,1]
    EXPECT_TRUE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
}

TEST(VectorClock, StrFormatsAllComponents)
{
    VectorClock vc(3);
    vc.advance(0);
    vc.advance(2);
    vc.advance(2);
    EXPECT_EQ(vc.str(), "[1,0,2]");
}

// ---------------------------------------------------------------------------
// Shared drivers (the fault-injection suite's ping-pong patterns, with
// the checker switched on)
// ---------------------------------------------------------------------------

GpuConfig
tinyConfig()
{
    GpuConfig cfg = GpuConfig::radeonVii(2);
    cfg.cusPerChiplet = 4;
    cfg.l2SizeBytesPerChiplet = 256 * 1024;
    cfg.l3SizeBytesTotal = 512 * 1024;
    cfg.finalize();
    return cfg;
}

KernelDesc
pingPongKernel(DsId ds, std::uint64_t lines, bool write, int stream)
{
    KernelDesc k;
    k.name = write ? "produce" : "consume";
    k.streamId = stream;
    k.numWgs = 8;
    k.mlp = 8;
    k.args.push_back(KernelArgDecl{
        ds, write ? AccessMode::ReadWrite : AccessMode::ReadOnly,
        RangeKind::Affine, {}});
    k.trace = [ds, lines, write](int wg, TraceSink &sink) {
        const std::uint64_t lo = lines * wg / 8;
        const std::uint64_t hi = lines * (wg + 1) / 8;
        for (std::uint64_t l = lo; l < hi; ++l)
            sink.touch(ds, l, write);
    };
    return k;
}

/** Cross-chiplet producer/consumer; returns the system for inspection. */
std::unique_ptr<GpuSystem>
makePingPong(FaultInjector *fi, ProtocolKind kind, bool fail_on_violation,
             int rounds = 4)
{
    RunOptions opts;
    opts.protocol = kind;
    opts.faultInjector = fi;
    opts.check = true;
    opts.failOnHbViolation = fail_on_violation;
    opts.streamChiplets[1] = {0};
    opts.streamChiplets[2] = {1};
    auto gpu = std::make_unique<GpuSystem>(tinyConfig(), opts);
    const DsId ds = gpu->space().allocate("pp", 64 * 1024);
    const std::uint64_t lines = gpu->space().alloc(ds).numLines();
    for (int r = 0; r < rounds; ++r) {
        gpu->enqueue(pingPongKernel(ds, lines, true, 1));
        gpu->enqueue(pingPongKernel(ds, lines, false, 2));
    }
    return gpu;
}

/** Local-read / remote-write pattern (exposes lost invalidates). */
std::unique_ptr<GpuSystem>
makeRemoteWriteLocalRead(FaultInjector *fi, ProtocolKind kind,
                         bool fail_on_violation, int rounds = 4)
{
    RunOptions opts;
    opts.protocol = kind;
    opts.faultInjector = fi;
    opts.check = true;
    opts.failOnHbViolation = fail_on_violation;
    opts.streamChiplets[1] = {0};
    opts.streamChiplets[2] = {1};
    auto gpu = std::make_unique<GpuSystem>(tinyConfig(), opts);
    const DsId ds = gpu->space().allocate("rwlr", 64 * 1024);
    const std::uint64_t lines = gpu->space().alloc(ds).numLines();
    gpu->enqueue(pingPongKernel(ds, lines, true, 1));
    gpu->enqueue(pingPongKernel(ds, lines, false, 1));
    for (int r = 0; r < rounds; ++r) {
        gpu->enqueue(pingPongKernel(ds, lines, true, 2));
        gpu->enqueue(pingPongKernel(ds, lines, false, 1));
    }
    return gpu;
}

// ---------------------------------------------------------------------------
// Soundness: silent on every correct protocol
// ---------------------------------------------------------------------------

TEST(HbCheck, SilentOnCorrectProtocols)
{
    for (ProtocolKind kind :
         {ProtocolKind::Baseline, ProtocolKind::CpElide, ProtocolKind::Hmg,
          ProtocolKind::HmgWriteBack}) {
        auto gpu = makePingPong(nullptr, kind, /*fail_on_violation=*/true);
        const RunResult r = gpu->run("pp");
        ASSERT_NE(gpu->checker(), nullptr);
        EXPECT_EQ(r.hbViolations, 0u) << protocolName(kind);
        EXPECT_EQ(gpu->checker()->violations(), 0u) << protocolName(kind);

        auto gpu2 = makeRemoteWriteLocalRead(nullptr, kind, true);
        const RunResult r2 = gpu2->run("rwlr");
        EXPECT_EQ(r2.hbViolations, 0u) << protocolName(kind);
    }
}

TEST(HbCheck, SilentOnSuiteWorkloads)
{
    // Harness-driven workloads across all three paper configurations:
    // the checker must never fire on a fault-free run.
    for (ProtocolKind kind : {ProtocolKind::Baseline, ProtocolKind::Hmg,
                              ProtocolKind::CpElide}) {
        for (const char *name : {"Square", "Backprop", "SSSP"}) {
            RunOptions opts;
            opts.protocol = kind;
            opts.check = true;
            const RunResult r = run({.workload = name,
                                     .scale = 0.05,
                                     .cfg = GpuConfig::radeonVii(4),
                                     .options = opts});
            EXPECT_EQ(r.hbViolations, 0u)
                << name << " on " << protocolName(kind);
        }
    }
}

TEST(HbCheck, DelayedFlushIsNotAViolation)
{
    // A delayed flush still performs its writebacks: pure timing.
    FaultPlan plan;
    plan.delayFlushProb = 1.0;
    plan.flushDelayCycles = 5000;
    FaultInjector fi{plan};
    auto gpu = makePingPong(&fi, ProtocolKind::Baseline, true);
    const RunResult r = gpu->run("pp");
    EXPECT_GT(fi.flushesDelayed(), 0u);
    EXPECT_EQ(r.hbViolations, 0u);
}

// ---------------------------------------------------------------------------
// Completeness: golden reports for every fault class
// ---------------------------------------------------------------------------

TEST(HbCheck, DroppedFlushYieldsMissingReleaseWithEdgeTrace)
{
    FaultPlan plan;
    plan.dropFlushProb = 1.0;
    FaultInjector fi{plan};
    auto gpu = makePingPong(&fi, ProtocolKind::Baseline,
                            /*fail_on_violation=*/false);
    const RunResult r = gpu->run("pp");
    EXPECT_GT(fi.flushesDropped(), 0u);
    ASSERT_GT(r.hbViolations, 0u);

    const HbChecker *hb = gpu->checker();
    ASSERT_NE(hb, nullptr);
    EXPECT_GT(hb->missingReleases(), 0u);
    ASSERT_FALSE(hb->reports().empty());

    const HbViolation &v = hb->reports().front();
    EXPECT_EQ(v.kind, HbViolation::Kind::MissingRelease);
    EXPECT_EQ(v.writer, 0);
    EXPECT_EQ(v.reader, 1);
    // The golden edge trace: both kernels named, the fault attributed
    // as a lost writeback (a release WAS issued), not an elision.
    EXPECT_NE(v.message.find("'produce'"), std::string::npos) << v.message;
    EXPECT_NE(v.message.find("'consume'"), std::string::npos) << v.message;
    EXPECT_NE(v.message.find("dropped flush"), std::string::npos)
        << v.message;
    EXPECT_EQ(v.message.find("elided"), std::string::npos) << v.message;
    EXPECT_NE(v.message.find("reader clock"), std::string::npos)
        << v.message;
}

TEST(HbCheck, SkippedInvalidateYieldsMissingAcquireWithEdgeTrace)
{
    FaultPlan plan;
    plan.skipInvalidateProb = 1.0;
    FaultInjector fi{plan};
    auto gpu = makeRemoteWriteLocalRead(&fi, ProtocolKind::Baseline,
                                        /*fail_on_violation=*/false);
    const RunResult r = gpu->run("rwlr");
    EXPECT_GT(fi.invalidatesSkipped(), 0u);
    ASSERT_GT(r.hbViolations, 0u);

    const HbChecker *hb = gpu->checker();
    EXPECT_GT(hb->missingAcquires(), 0u);

    bool sawAcquireTrace = false;
    for (const HbViolation &v : hb->reports()) {
        if (v.kind != HbViolation::Kind::MissingAcquire)
            continue;
        sawAcquireTrace = true;
        EXPECT_EQ(v.writer, 1);
        EXPECT_EQ(v.reader, 0);
        EXPECT_NE(v.message.find("skipped invalidate"), std::string::npos)
            << v.message;
        EXPECT_EQ(v.message.find("elided"), std::string::npos) << v.message;
        break;
    }
    EXPECT_TRUE(sawAcquireTrace);
}

TEST(HbCheck, TableCorruptionIsAttributedToTheElision)
{
    // A corrupted coherence table makes CPElide elide syncs it needed;
    // unlike the flush/invalidate faults, no op was ever issued, so the
    // checker must attribute the missing edge to the elision decision
    // and quote the launch's sync plan.
    FaultPlan plan;
    plan.corruptTableProb = 1.0;
    FaultInjector fi{plan};
    auto gpu = makePingPong(&fi, ProtocolKind::CpElide,
                            /*fail_on_violation=*/false);
    const RunResult r = gpu->run("pp");
    ASSERT_GT(fi.tableCorruptions(), 0u);
    ASSERT_GT(r.hbViolations, 0u);

    const HbChecker *hb = gpu->checker();
    ASSERT_FALSE(hb->reports().empty());
    const HbViolation &v = hb->reports().front();
    EXPECT_NE(v.message.find("elided"), std::string::npos) << v.message;
    // The reader launch's actual (wrongly pruned) sync plan is quoted.
    EXPECT_NE(v.message.find("issued acquires="), std::string::npos)
        << v.message;
    EXPECT_NE(v.message.find("releases="), std::string::npos) << v.message;
}

TEST(HbCheck, EveryObservableFlushDropIsDetected)
{
    // Mirror of FaultInjection.EveryObservableFlushDropIsDetected with
    // the HB checker as the detector: one campaign per flush op, each
    // dropping exactly that op. 100% of drops that discard dirty lines
    // are flagged; drops of clean L2s stay silent (no false positives).
    FaultInjector probe{FaultPlan{}};
    makePingPong(&probe, ProtocolKind::Baseline, true)->run("pp");
    const std::uint64_t flushes = probe.flushesSeen();
    ASSERT_GT(flushes, 0u);

    std::uint64_t observableDrops = 0;
    for (std::uint64_t i = 0; i < flushes; ++i) {
        FaultPlan plan;
        plan.dropFlushAt = {i};
        FaultInjector fi{plan};
        auto gpu = makePingPong(&fi, ProtocolKind::Baseline,
                                /*fail_on_violation=*/false);
        const RunResult r = gpu->run("pp");
        ASSERT_EQ(fi.flushesDropped(), 1u) << "drop index " << i;
        if (fi.droppedDirtyLines() > 0) {
            ++observableDrops;
            EXPECT_GT(r.hbViolations, 0u)
                << "undetected data loss at flush " << i << " ("
                << fi.droppedDirtyLines() << " dirty lines)";
        } else {
            EXPECT_EQ(r.hbViolations, 0u)
                << "false positive at clean flush " << i;
        }
    }
    EXPECT_GT(observableDrops, 1u);
}

TEST(HbCheck, SubsumesTheLegacyDetectionChannels)
{
    // On the all-drops campaign the checker finds at least everything
    // the staleness checker and host-visibility audit find, while also
    // classifying each miss.
    FaultPlan plan;
    plan.dropFlushProb = 1.0;
    FaultInjector fi{plan};
    auto gpu = makePingPong(&fi, ProtocolKind::Baseline,
                            /*fail_on_violation=*/false);
    const RunResult r = gpu->run("pp");
    EXPECT_GT(r.staleReads, 0u);
    EXPECT_GT(r.hostVisibilityViolations, 0u);
    EXPECT_GT(r.hbViolations, 0u);
    const HbChecker *hb = gpu->checker();
    EXPECT_GT(hb->missingReleases(), 0u);
    EXPECT_GT(hb->hostInvisible(), 0u);
    EXPECT_EQ(hb->violations(),
              hb->missingReleases() + hb->missingAcquires() +
                  hb->hostInvisible());
}

// ---------------------------------------------------------------------------
// Enforcement plumbing
// ---------------------------------------------------------------------------

TEST(HbCheck, ViolationsThrowInvariantErrorByDefault)
{
    FaultPlan plan;
    plan.dropFlushProb = 1.0;
    FaultInjector fi{plan};
    auto gpu = makePingPong(&fi, ProtocolKind::Baseline,
                            /*fail_on_violation=*/true);
    try {
        gpu->run("pp");
        FAIL() << "expected InvariantError";
    } catch (const InvariantError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("happens-before checker"), std::string::npos);
        EXPECT_NE(what.find("missing-release"), std::string::npos);
    }
    // The checker outlives the throw for post-mortem inspection.
    ASSERT_NE(gpu->checker(), nullptr);
    EXPECT_GT(gpu->checker()->violations(), 0u);
}

TEST(HbCheck, EnvKnobEnablesChecking)
{
    ASSERT_EQ(setenv("CPELIDE_CHECK", "1", 1), 0);
    RunOptions opts;
    opts.protocol = ProtocolKind::CpElide; // opts.check left false
    GpuSystem gpu(tinyConfig(), opts);
    unsetenv("CPELIDE_CHECK");
    ASSERT_NE(gpu.checker(), nullptr);

    RunOptions plain;
    plain.protocol = ProtocolKind::CpElide;
    GpuSystem off(tinyConfig(), plain);
    EXPECT_EQ(off.checker(), nullptr);
}

TEST(HbCheck, ReportCapBoundsStorageNotCounters)
{
    FaultPlan plan;
    plan.dropFlushProb = 1.0;
    plan.skipInvalidateProb = 1.0;
    FaultInjector fi{plan};
    auto gpu = makePingPong(&fi, ProtocolKind::Baseline,
                            /*fail_on_violation=*/false, /*rounds=*/8);
    const RunResult r = gpu->run("pp");
    const HbChecker *hb = gpu->checker();
    EXPECT_LE(hb->reports().size(), HbChecker::kMaxReports);
    EXPECT_EQ(r.hbViolations, hb->violations());
    EXPECT_GE(hb->violations(), hb->reports().size());
}

} // namespace
} // namespace cpelide
