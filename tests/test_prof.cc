/**
 * @file
 * prof-layer tests: Counter drop-in semantics, Histogram log2
 * bucketing edge cases (zero, max bucket, 2^63 saturation),
 * ProfRegistry snapshots, and the stall-cycle attribution invariant —
 * the six bins must sum exactly to numChiplets * cycles on every
 * workload/protocol pair (GpuSystem asserts it per chiplet; these
 * tests re-check the aggregated RunResult fields end to end).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "prof/counter.hh"
#include "prof/registry.hh"
#include "prof/snapshot.hh"

namespace cpelide
{
namespace
{

TEST(Counter, DropInForUint64)
{
    prof::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    EXPECT_EQ(c.value(), 1u);
    EXPECT_EQ(c++, 1u); // postfix returns the old value
    EXPECT_EQ(c.value(), 2u);
    c += 40;
    EXPECT_EQ(c.value(), 42u);
    c = 7;
    const std::uint64_t raw = c; // implicit conversion
    EXPECT_EQ(raw, 7u);
}

TEST(Histogram, BucketsZeroSeparatelyFromOne)
{
    EXPECT_EQ(prof::Histogram::bucketFor(0), 0);
    EXPECT_EQ(prof::Histogram::bucketFor(1), 1);
    EXPECT_EQ(prof::Histogram::bucketFor(2), 2);
    EXPECT_EQ(prof::Histogram::bucketFor(3), 2);
    EXPECT_EQ(prof::Histogram::bucketFor(4), 3);

    prof::Histogram h;
    h.record(0);
    h.record(0);
    h.record(1);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 1u);
}

TEST(Histogram, BucketBoundsArePowersOfTwo)
{
    // Bucket k >= 1 holds [2^(k-1), 2^k): both edges land where the
    // doc comment promises.
    for (int k = 1; k < 64; ++k) {
        const std::uint64_t lo = prof::Histogram::bucketLo(k);
        EXPECT_EQ(prof::Histogram::bucketFor(lo), k) << "k=" << k;
        EXPECT_EQ(prof::Histogram::bucketFor(2 * lo - 1), k) << "k=" << k;
    }
}

TEST(Histogram, SaturatesAtTopBucket)
{
    const std::uint64_t big = std::uint64_t{1} << 63;
    EXPECT_EQ(prof::Histogram::bucketFor(big - 1), 63);
    EXPECT_EQ(prof::Histogram::bucketFor(big), prof::Histogram::kBuckets - 1);
    EXPECT_EQ(prof::Histogram::bucketFor(~std::uint64_t{0}),
              prof::Histogram::kBuckets - 1);

    prof::Histogram h;
    h.record(big);
    h.record(~std::uint64_t{0});
    EXPECT_EQ(h.bucket(prof::Histogram::kBuckets - 1), 2u);
    EXPECT_EQ(h.count(), 2u);
}

TEST(ProfRegistry, SnapshotsInRegistrationOrder)
{
    prof::ProfRegistry reg;
    prof::Counter a(3);
    prof::Counter b(5);
    reg.addCounter("cp/a", &a);
    reg.addGauge("cp/g", [] { return std::uint64_t{11}; });
    reg.addCounter("mem/b", &b);
    reg.publish("stall/total", 99);

    prof::Histogram h;
    h.record(0);
    h.record(7);
    reg.addHistogram("mem/latency", &h);

    reg.addSeries("series/x", [&a] { return a.value(); });
    reg.sample(10);
    a += 1;
    reg.sample(20);

    const prof::ProfSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 4u);
    EXPECT_EQ(snap.counters[0].name, "cp/a");
    EXPECT_EQ(snap.counters[0].value, 4u); // live pointer: sees += 1
    EXPECT_EQ(snap.counters[1].name, "cp/g");
    EXPECT_EQ(snap.counters[1].value, 11u);
    EXPECT_EQ(snap.counters[2].name, "mem/b");
    EXPECT_EQ(snap.counters[2].value, 5u);
    EXPECT_EQ(snap.counters[3].name, "stall/total");
    EXPECT_EQ(snap.counters[3].value, 99u);

    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 2u);
    EXPECT_EQ(snap.histograms[0].sum, 7u);
    // Trimmed after the last non-zero bucket (value 7 -> bucket 3).
    ASSERT_EQ(snap.histograms[0].buckets.size(), 4u);
    EXPECT_EQ(snap.histograms[0].buckets[0], 1u);
    EXPECT_EQ(snap.histograms[0].buckets[3], 1u);

    ASSERT_EQ(snap.series.size(), 1u);
    ASSERT_EQ(snap.series[0].points.size(), 2u);
    EXPECT_EQ(snap.series[0].points[0].tick, 10u);
    EXPECT_EQ(snap.series[0].points[0].value, 3u);
    EXPECT_EQ(snap.series[0].points[1].value, 4u);
}

/** Sum of the six attribution bins. */
std::uint64_t
stallSum(const RunResult &r)
{
    return r.stallComputeCycles + r.stallMemoryCycles +
           r.stallBarrierCycles + r.stallFlushCycles +
           r.stallInvalidateCycles + r.stallDirectoryCycles;
}

class StallAttribution
    : public ::testing::TestWithParam<std::pair<const char *, ProtocolKind>>
{};

TEST_P(StallAttribution, BinsSumToTotalChipletCycles)
{
    const auto [workload, kind] = GetParam();
    const RunResult r = run({.workload = workload,
                             .protocol = kind,
                             .chiplets = 4,
                             .scale = 0.05});
    ASSERT_GT(r.cycles, 0u);
    // Monolithic simulates one device; numChiplets holds the
    // *equivalent* chiplet count (see RunResult).
    const std::uint64_t simulated =
        kind == ProtocolKind::Monolithic
            ? 1
            : static_cast<std::uint64_t>(r.numChiplets);
    EXPECT_EQ(stallSum(r), simulated * r.cycles)
        << workload << "/" << r.protocol;
    // Work happened, so the compute and memory bins cannot both be 0.
    EXPECT_GT(r.stallComputeCycles + r.stallMemoryCycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    All, StallAttribution,
    ::testing::Values(
        std::make_pair("Square", ProtocolKind::Baseline),
        std::make_pair("Square", ProtocolKind::CpElide),
        std::make_pair("Square", ProtocolKind::Hmg),
        std::make_pair("BabelStream", ProtocolKind::Baseline),
        std::make_pair("BabelStream", ProtocolKind::CpElide),
        std::make_pair("BabelStream", ProtocolKind::Hmg),
        std::make_pair("BFS", ProtocolKind::Baseline),
        std::make_pair("BFS", ProtocolKind::CpElide),
        std::make_pair("BFS", ProtocolKind::Hmg),
        std::make_pair("HACC", ProtocolKind::HmgWriteBack),
        std::make_pair("Square", ProtocolKind::Monolithic)),
    [](const auto &paramInfo) {
        std::string name = std::string(paramInfo.param.first) + "_" +
                           protocolName(paramInfo.param.second);
        for (char &c : name) {
            if (c == '-' || c == ' ')
                c = '_';
        }
        return name;
    });

TEST(StallAttributionMultiStream, BinsSumAcrossStreams)
{
    // Multi-stream Baseline is the case where a chiplet's attribution
    // cursor can run past a later kernel's window; the clamping must
    // still conserve every cycle.
    const RunResult r = run({.workload = "Square",
                             .protocol = ProtocolKind::Baseline,
                             .chiplets = 4,
                             .scale = 0.05,
                             .copies = 2});
    ASSERT_GT(r.cycles, 0u);
    EXPECT_EQ(stallSum(r),
              static_cast<std::uint64_t>(r.numChiplets) * r.cycles);
}

TEST(ProfiledRun, SnapshotLandsInRunResult)
{
    RunOptions opts;
    opts.protocol = ProtocolKind::CpElide;
    prof::ProfRegistry reg;
    opts.prof = &reg;

    RunRequest req;
    req.workload = "Square";
    req.options = opts;
    req.chiplets = 4;
    req.scale = 0.05;
    const RunResult r = run(req);

    ASSERT_FALSE(r.prof.empty());
    // The stall bins are published into the registry too, and must
    // match the RunResult fields exactly.
    std::uint64_t published = 0, total = 0;
    for (const prof::CounterSnap &c : r.prof.counters) {
        if (c.name == "stall/total-chiplet-cycles")
            total = c.value;
        else if (c.name.rfind("stall/", 0) == 0)
            published += c.value;
    }
    EXPECT_EQ(published, stallSum(r));
    EXPECT_EQ(total, stallSum(r));

    // Series were sampled at every kernel boundary.
    bool sawSeries = false;
    for (const prof::SeriesSnap &s : r.prof.series) {
        if (!s.points.empty())
            sawSeries = true;
    }
    EXPECT_TRUE(sawSeries);
}

} // namespace
} // namespace cpelide
