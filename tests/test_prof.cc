/**
 * @file
 * prof-layer tests: Counter drop-in semantics, Histogram log2
 * bucketing edge cases (zero, max bucket, 2^63 saturation),
 * ProfRegistry snapshots, and the stall-cycle attribution invariant —
 * the six bins must sum exactly to numChiplets * cycles on every
 * workload/protocol pair (GpuSystem asserts it per chiplet; these
 * tests re-check the aggregated RunResult fields end to end).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "prof/counter.hh"
#include "prof/registry.hh"
#include "prof/snapshot.hh"
#include "prof/window.hh"

namespace cpelide
{
namespace
{

TEST(Counter, DropInForUint64)
{
    prof::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    EXPECT_EQ(c.value(), 1u);
    EXPECT_EQ(c++, 1u); // postfix returns the old value
    EXPECT_EQ(c.value(), 2u);
    c += 40;
    EXPECT_EQ(c.value(), 42u);
    c = 7;
    const std::uint64_t raw = c; // implicit conversion
    EXPECT_EQ(raw, 7u);
}

TEST(Histogram, BucketsZeroSeparatelyFromOne)
{
    EXPECT_EQ(prof::Histogram::bucketFor(0), 0);
    EXPECT_EQ(prof::Histogram::bucketFor(1), 1);
    EXPECT_EQ(prof::Histogram::bucketFor(2), 2);
    EXPECT_EQ(prof::Histogram::bucketFor(3), 2);
    EXPECT_EQ(prof::Histogram::bucketFor(4), 3);

    prof::Histogram h;
    h.record(0);
    h.record(0);
    h.record(1);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 1u);
}

TEST(Histogram, BucketBoundsArePowersOfTwo)
{
    // Bucket k >= 1 holds [2^(k-1), 2^k): both edges land where the
    // doc comment promises.
    for (int k = 1; k < 64; ++k) {
        const std::uint64_t lo = prof::Histogram::bucketLo(k);
        EXPECT_EQ(prof::Histogram::bucketFor(lo), k) << "k=" << k;
        EXPECT_EQ(prof::Histogram::bucketFor(2 * lo - 1), k) << "k=" << k;
    }
}

TEST(Histogram, SaturatesAtTopBucket)
{
    const std::uint64_t big = std::uint64_t{1} << 63;
    EXPECT_EQ(prof::Histogram::bucketFor(big - 1), 63);
    EXPECT_EQ(prof::Histogram::bucketFor(big), prof::Histogram::kBuckets - 1);
    EXPECT_EQ(prof::Histogram::bucketFor(~std::uint64_t{0}),
              prof::Histogram::kBuckets - 1);

    prof::Histogram h;
    h.record(big);
    h.record(~std::uint64_t{0});
    EXPECT_EQ(h.bucket(prof::Histogram::kBuckets - 1), 2u);
    EXPECT_EQ(h.count(), 2u);
}

TEST(ProfRegistry, SnapshotsInRegistrationOrder)
{
    prof::ProfRegistry reg;
    prof::Counter a(3);
    prof::Counter b(5);
    reg.addCounter("cp/a", &a);
    reg.addGauge("cp/g", [] { return std::uint64_t{11}; });
    reg.addCounter("mem/b", &b);
    reg.publish("stall/total", 99);

    prof::Histogram h;
    h.record(0);
    h.record(7);
    reg.addHistogram("mem/latency", &h);

    reg.addSeries("series/x", [&a] { return a.value(); });
    reg.sample(10);
    a += 1;
    reg.sample(20);

    const prof::ProfSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 4u);
    EXPECT_EQ(snap.counters[0].name, "cp/a");
    EXPECT_EQ(snap.counters[0].value, 4u); // live pointer: sees += 1
    EXPECT_EQ(snap.counters[1].name, "cp/g");
    EXPECT_EQ(snap.counters[1].value, 11u);
    EXPECT_EQ(snap.counters[2].name, "mem/b");
    EXPECT_EQ(snap.counters[2].value, 5u);
    EXPECT_EQ(snap.counters[3].name, "stall/total");
    EXPECT_EQ(snap.counters[3].value, 99u);

    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 2u);
    EXPECT_EQ(snap.histograms[0].sum, 7u);
    // Trimmed after the last non-zero bucket (value 7 -> bucket 3).
    ASSERT_EQ(snap.histograms[0].buckets.size(), 4u);
    EXPECT_EQ(snap.histograms[0].buckets[0], 1u);
    EXPECT_EQ(snap.histograms[0].buckets[3], 1u);

    ASSERT_EQ(snap.series.size(), 1u);
    ASSERT_EQ(snap.series[0].points.size(), 2u);
    EXPECT_EQ(snap.series[0].points[0].tick, 10u);
    EXPECT_EQ(snap.series[0].points[0].value, 3u);
    EXPECT_EQ(snap.series[0].points[1].value, 4u);
}

/** Sum of the six attribution bins. */
std::uint64_t
stallSum(const RunResult &r)
{
    return r.stallComputeCycles + r.stallMemoryCycles +
           r.stallBarrierCycles + r.stallFlushCycles +
           r.stallInvalidateCycles + r.stallDirectoryCycles;
}

class StallAttribution
    : public ::testing::TestWithParam<std::pair<const char *, ProtocolKind>>
{};

TEST_P(StallAttribution, BinsSumToTotalChipletCycles)
{
    const auto [workload, kind] = GetParam();
    const RunResult r = run({.workload = workload,
                             .protocol = kind,
                             .chiplets = 4,
                             .scale = 0.05});
    ASSERT_GT(r.cycles, 0u);
    // Monolithic simulates one device; numChiplets holds the
    // *equivalent* chiplet count (see RunResult).
    const std::uint64_t simulated =
        kind == ProtocolKind::Monolithic
            ? 1
            : static_cast<std::uint64_t>(r.numChiplets);
    EXPECT_EQ(stallSum(r), simulated * r.cycles)
        << workload << "/" << r.protocol;
    // Work happened, so the compute and memory bins cannot both be 0.
    EXPECT_GT(r.stallComputeCycles + r.stallMemoryCycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    All, StallAttribution,
    ::testing::Values(
        std::make_pair("Square", ProtocolKind::Baseline),
        std::make_pair("Square", ProtocolKind::CpElide),
        std::make_pair("Square", ProtocolKind::Hmg),
        std::make_pair("BabelStream", ProtocolKind::Baseline),
        std::make_pair("BabelStream", ProtocolKind::CpElide),
        std::make_pair("BabelStream", ProtocolKind::Hmg),
        std::make_pair("BFS", ProtocolKind::Baseline),
        std::make_pair("BFS", ProtocolKind::CpElide),
        std::make_pair("BFS", ProtocolKind::Hmg),
        std::make_pair("HACC", ProtocolKind::HmgWriteBack),
        std::make_pair("Square", ProtocolKind::Monolithic)),
    [](const auto &paramInfo) {
        std::string name = std::string(paramInfo.param.first) + "_" +
                           protocolName(paramInfo.param.second);
        for (char &c : name) {
            if (c == '-' || c == ' ')
                c = '_';
        }
        return name;
    });

TEST(StallAttributionMultiStream, BinsSumAcrossStreams)
{
    // Multi-stream Baseline is the case where a chiplet's attribution
    // cursor can run past a later kernel's window; the clamping must
    // still conserve every cycle.
    const RunResult r = run({.workload = "Square",
                             .protocol = ProtocolKind::Baseline,
                             .chiplets = 4,
                             .scale = 0.05,
                             .copies = 2});
    ASSERT_GT(r.cycles, 0u);
    EXPECT_EQ(stallSum(r),
              static_cast<std::uint64_t>(r.numChiplets) * r.cycles);
}

TEST(ProfiledRun, SnapshotLandsInRunResult)
{
    RunOptions opts;
    opts.protocol = ProtocolKind::CpElide;
    prof::ProfRegistry reg;
    opts.prof = &reg;

    RunRequest req;
    req.workload = "Square";
    req.options = opts;
    req.chiplets = 4;
    req.scale = 0.05;
    const RunResult r = run(req);

    ASSERT_FALSE(r.prof.empty());
    // The stall bins are published into the registry too, and must
    // match the RunResult fields exactly.
    std::uint64_t published = 0, total = 0;
    for (const prof::CounterSnap &c : r.prof.counters) {
        if (c.name == "stall/total-chiplet-cycles")
            total = c.value;
        else if (c.name.rfind("stall/", 0) == 0)
            published += c.value;
    }
    EXPECT_EQ(published, stallSum(r));
    EXPECT_EQ(total, stallSum(r));

    // Series were sampled at every kernel boundary.
    bool sawSeries = false;
    for (const prof::SeriesSnap &s : r.prof.series) {
        if (!s.points.empty())
            sawSeries = true;
    }
    EXPECT_TRUE(sawSeries);
}

// --- WindowedHistogram: caller-supplied clock, no wall time here. ---

constexpr std::uint64_t kSec = 1000000000ull;

TEST(WindowedHistogram, EmptyWindowIsAllZero)
{
    prof::WindowedHistogram wh;
    const prof::WindowStats s = wh.window(5 * kSec, kSec);
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.sum, 0u);
    EXPECT_EQ(s.ratePerSec, 0.0);
    EXPECT_EQ(s.p50, 0.0);
    EXPECT_EQ(s.p95, 0.0);
    EXPECT_EQ(s.p99, 0.0);
}

TEST(WindowedHistogram, WindowRotationExpiresOldSamples)
{
    prof::WindowedHistogram wh;
    wh.record(kSec / 2, 100); // lands in the [0s, 1s) slot

    // Visible right away in every horizon...
    EXPECT_EQ(wh.window(kSec / 2, kSec).count, 1u);
    EXPECT_EQ(wh.window(kSec / 2, 10 * kSec).count, 1u);

    // ...gone from the 1 s window once that slot ages out, while the
    // 10 s window still holds it.
    const std::uint64_t later = 2 * kSec + kSec / 2;
    EXPECT_EQ(wh.window(later, kSec).count, 0u);
    EXPECT_EQ(wh.window(later, 10 * kSec).count, 1u);
    EXPECT_EQ(wh.window(later, 10 * kSec).sum, 100u);

    // And gone from the 10 s window too, eventually.
    EXPECT_EQ(wh.window(12 * kSec, 10 * kSec).count, 0u);
}

TEST(WindowedHistogram, RingWrapLazilyResetsTheReusedSlot)
{
    // 4 slots of 1 s: epoch 0 and epoch 4 share a slot index, so the
    // second record must reset what the first left there.
    prof::WindowedHistogram wh(kSec, 4);
    wh.record(0, 111);
    wh.record(4 * kSec, 222);
    const prof::WindowStats s = wh.window(4 * kSec, 60 * kSec);
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.sum, 222u);
}

TEST(WindowedHistogram, QuantilesInterpolateInsideTheBucket)
{
    prof::WindowedHistogram wh;
    // 100 samples of 1000 all land in the [512, 1024) bucket; the
    // quantile walks toward the upper bound in rank proportion.
    for (int i = 0; i < 100; ++i)
        wh.record(kSec / 4, 1000);
    const prof::WindowStats s = wh.window(kSec / 2, kSec);
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.p50, 512.0 + 512.0 * 0.50); // rank 50/100
    EXPECT_DOUBLE_EQ(s.p95, 512.0 + 512.0 * 0.95);
    EXPECT_DOUBLE_EQ(s.p99, 512.0 + 512.0 * 0.99);
    EXPECT_EQ(s.ratePerSec, 100.0); // 100 samples / 1 s window
}

TEST(WindowedHistogram, QuantilesAreMonotoneAcrossMixedValues)
{
    prof::WindowedHistogram wh;
    // A spread of magnitudes across several slots.
    for (std::uint64_t i = 1; i <= 500; ++i)
        wh.record((i % 8) * kSec, i * 37 % 100000);
    const std::uint64_t now = 8 * kSec;
    const prof::WindowStats s = wh.window(now, 60 * kSec);
    EXPECT_EQ(s.count, 500u);
    EXPECT_LE(s.p50, s.p95);
    EXPECT_LE(s.p95, s.p99);
    // Wider horizons can only see more.
    EXPECT_LE(wh.window(now, kSec).count, wh.window(now, 10 * kSec).count);
    EXPECT_LE(wh.window(now, 10 * kSec).count,
              wh.window(now, 60 * kSec).count);
}

TEST(WindowedHistogram, ZeroValuesStayInTheZeroBucket)
{
    prof::WindowedHistogram wh;
    for (int i = 0; i < 10; ++i)
        wh.record(0, 0);
    const prof::WindowStats s = wh.window(0, kSec);
    EXPECT_EQ(s.count, 10u);
    EXPECT_EQ(s.sum, 0u);
    EXPECT_EQ(s.p50, 0.0);
    EXPECT_EQ(s.p99, 0.0);
}

} // namespace
} // namespace cpelide
