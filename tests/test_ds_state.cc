/** @file Fig-6 state machine: exhaustive + property tests. */

#include <gtest/gtest.h>

#include "core/ds_state.hh"
#include "sim/rng.hh"

namespace cpelide
{
namespace
{

TEST(AddrRange, EmptyAndOverlap)
{
    const AddrRange empty{};
    const AddrRange a{0, 100};
    const AddrRange b{100, 200};
    const AddrRange c{50, 150};
    EXPECT_TRUE(empty.empty());
    EXPECT_FALSE(a.overlaps(b)); // half-open: [0,100) vs [100,200)
    EXPECT_TRUE(a.overlaps(c));
    EXPECT_TRUE(c.overlaps(b));
    EXPECT_FALSE(a.overlaps(empty));
    EXPECT_FALSE(empty.overlaps(a));
}

TEST(AddrRange, UnionAndIntersect)
{
    const AddrRange a{0, 100};
    const AddrRange b{200, 300};
    const AddrRange u = AddrRange::unionOf(a, b);
    EXPECT_EQ(u.lo, 0u);
    EXPECT_EQ(u.hi, 300u);
    EXPECT_TRUE(AddrRange::intersectOf(a, b).empty());
    const AddrRange i = AddrRange::intersectOf(AddrRange{50, 250}, b);
    EXPECT_EQ(i.lo, 200u);
    EXPECT_EQ(i.hi, 250u);
    EXPECT_EQ(AddrRange::unionOf(AddrRange{}, a), a);
    EXPECT_EQ(AddrRange::unionOf(a, AddrRange{}), a);
}

TEST(AddrRange, Contains)
{
    const AddrRange a{0, 100};
    EXPECT_TRUE(a.contains(AddrRange{10, 20}));
    EXPECT_TRUE(a.contains(a));
    EXPECT_FALSE(a.contains(AddrRange{10, 101}));
    EXPECT_FALSE(a.contains(AddrRange{}));
}

// Exhaustive transition table (Fig 6).
struct Case
{
    DsState from;
    DsEvent ev;
    DsState to;
};

constexpr Case kTable[] = {
    {DsState::NotPresent, DsEvent::LocalRead, DsState::Valid},
    {DsState::NotPresent, DsEvent::LocalWrite, DsState::Dirty},
    {DsState::NotPresent, DsEvent::RemoteWrite, DsState::NotPresent},
    {DsState::NotPresent, DsEvent::Release, DsState::NotPresent},
    {DsState::NotPresent, DsEvent::Acquire, DsState::NotPresent},

    {DsState::Valid, DsEvent::LocalRead, DsState::Valid},
    {DsState::Valid, DsEvent::LocalWrite, DsState::Dirty},
    {DsState::Valid, DsEvent::RemoteWrite, DsState::Stale},
    {DsState::Valid, DsEvent::Release, DsState::Valid},
    {DsState::Valid, DsEvent::Acquire, DsState::NotPresent},

    {DsState::Dirty, DsEvent::LocalRead, DsState::Dirty},
    {DsState::Dirty, DsEvent::LocalWrite, DsState::Dirty},
    {DsState::Dirty, DsEvent::RemoteWrite, DsState::Stale},
    {DsState::Dirty, DsEvent::Release, DsState::Valid},
    {DsState::Dirty, DsEvent::Acquire, DsState::NotPresent},

    {DsState::Stale, DsEvent::LocalRead, DsState::Stale},
    {DsState::Stale, DsEvent::LocalWrite, DsState::Stale},
    {DsState::Stale, DsEvent::RemoteWrite, DsState::Stale},
    {DsState::Stale, DsEvent::Release, DsState::Stale},
    {DsState::Stale, DsEvent::Acquire, DsState::NotPresent},
};

TEST(DsTransition, MatchesFig6Exhaustively)
{
    for (const Case &c : kTable) {
        EXPECT_EQ(dsTransition(c.from, c.ev), c.to)
            << dsStateName(c.from) << " + event "
            << static_cast<int>(c.ev);
    }
}

TEST(DsTransition, AcquireAlwaysResets)
{
    for (DsState s : {DsState::NotPresent, DsState::Valid,
                      DsState::Dirty, DsState::Stale}) {
        EXPECT_EQ(dsTransition(s, DsEvent::Acquire),
                  DsState::NotPresent);
    }
}

/**
 * Property: "Dirty" is only reachable through a LocalWrite, and once
 * Stale only an Acquire can leave the state. These are the two
 * invariants the elide engine's correctness argument leans on.
 */
TEST(DsTransitionProperty, ReachabilityInvariants)
{
    Rng rng(77);
    DsState s = DsState::NotPresent;
    for (int i = 0; i < 100000; ++i) {
        const auto ev = static_cast<DsEvent>(rng.below(5));
        const DsState prev = s;
        s = dsTransition(s, ev);
        if (s == DsState::Dirty && prev != DsState::Dirty) {
            EXPECT_EQ(ev, DsEvent::LocalWrite);
        }
        if (prev == DsState::Stale && s != DsState::Stale) {
            EXPECT_EQ(ev, DsEvent::Acquire);
        }
        // Release never invents data or staleness.
        if (ev == DsEvent::Release) {
            EXPECT_NE(s, DsState::Dirty);
        }
    }
}

TEST(DsStateName, AllNamed)
{
    EXPECT_STREQ(dsStateName(DsState::NotPresent), "NP");
    EXPECT_STREQ(dsStateName(DsState::Valid), "V");
    EXPECT_STREQ(dsStateName(DsState::Dirty), "D");
    EXPECT_STREQ(dsStateName(DsState::Stale), "S");
}

} // namespace
} // namespace cpelide
