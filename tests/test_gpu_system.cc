/** @file GpuSystem end-to-end timing/accounting tests (small configs). */

#include <gtest/gtest.h>

#include "gpu/gpu_system.hh"

namespace cpelide
{
namespace
{

GpuConfig
tinyConfig(int chiplets)
{
    GpuConfig cfg = GpuConfig::radeonVii(chiplets);
    cfg.cusPerChiplet = 4;
    cfg.l2SizeBytesPerChiplet = 256 * 1024;
    cfg.l3SizeBytesTotal = 512 * 1024;
    cfg.finalize();
    return cfg;
}

/** A streaming kernel over one array. */
KernelDesc
streamKernel(DsId ds, std::uint64_t lines, bool write, int wgs = 16)
{
    KernelDesc k;
    k.name = write ? "stream_w" : "stream_r";
    k.numWgs = wgs;
    k.mlp = 8;
    k.args.push_back(KernelArgDecl{
        ds, write ? AccessMode::ReadWrite : AccessMode::ReadOnly,
        RangeKind::Affine, {}});
    k.trace = [ds, lines, write, wgs](int wg, TraceSink &sink) {
        const std::uint64_t lo = lines * wg / wgs;
        const std::uint64_t hi = lines * (wg + 1) / wgs;
        for (std::uint64_t l = lo; l < hi; ++l)
            sink.touch(ds, l, write);
    };
    return k;
}

TEST(GpuSystem, RunProducesSaneCounters)
{
    RunOptions opts;
    opts.protocol = ProtocolKind::Baseline;
    opts.panicOnStale = true;
    GpuSystem gpu(tinyConfig(2), opts);
    const DsId ds = gpu.space().allocate("a", 64 * 1024);
    const std::uint64_t lines = gpu.space().alloc(ds).numLines();

    gpu.enqueue(streamKernel(ds, lines, true));
    gpu.enqueue(streamKernel(ds, lines, false));
    const RunResult r = gpu.run("two_kernels");

    EXPECT_EQ(r.kernels, 2u);
    EXPECT_EQ(r.accesses, 2 * lines);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.staleReads, 0u);
    EXPECT_EQ(r.protocol, std::string("Baseline"));
    EXPECT_GT(r.flits.total(), 0u);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.syncStallCycles, 0u);
}

TEST(GpuSystem, EnqueueValidatesKernels)
{
    GpuSystem gpu(tinyConfig(2), {});
    KernelDesc bad;
    bad.name = "no_trace";
    bad.numWgs = 1;
    EXPECT_THROW(gpu.enqueue(bad), FatalError);
    KernelDesc zero;
    zero.name = "no_wgs";
    zero.numWgs = 0;
    zero.trace = [](int, TraceSink &) {};
    EXPECT_THROW(gpu.enqueue(zero), FatalError);
}

TEST(GpuSystem, CpElideNeverSlowerThanBaselineOnReuse)
{
    // An iterated affine kernel: CPElide must beat Baseline, and both
    // must stay coherent (panicOnStale).
    auto run = [&](ProtocolKind kind) {
        RunOptions opts;
        opts.protocol = kind;
        opts.panicOnStale = true;
        GpuSystem gpu(tinyConfig(2), opts);
        // Large enough that per-kernel work dwarfs the one-time CP
        // table-processing latency, as in the paper's workloads: one
        // producer kernel, then ten reader kernels that reuse its data.
        const DsId ds = gpu.space().allocate("a", 256 * 1024);
        const std::uint64_t lines = gpu.space().alloc(ds).numLines();
        gpu.enqueue(streamKernel(ds, lines, true));
        for (int i = 0; i < 10; ++i)
            gpu.enqueue(streamKernel(ds, lines, false));
        return gpu.run("iterated");
    };
    const RunResult base = run(ProtocolKind::Baseline);
    const RunResult elide = run(ProtocolKind::CpElide);
    EXPECT_LT(elide.cycles, base.cycles);
    EXPECT_GT(elide.l2.hitRate(), base.l2.hitRate());
    EXPECT_LT(elide.l2FlushesIssued, base.l2FlushesIssued);
}

TEST(GpuSystem, ProducerConsumerAcrossChipletsStaysCoherent)
{
    // Kernel A: chiplet-partitioned write. Kernel B: every WG reads
    // the WHOLE array (Full annotation), crossing chiplets. Under
    // CPElide the engine must schedule the release; panicOnStale makes
    // any mistake fatal.
    RunOptions opts;
    opts.protocol = ProtocolKind::CpElide;
    opts.panicOnStale = true;
    GpuSystem gpu(tinyConfig(2), opts);
    const DsId ds = gpu.space().allocate("a", 64 * 1024);
    const std::uint64_t lines = gpu.space().alloc(ds).numLines();

    gpu.enqueue(streamKernel(ds, lines, true));
    KernelDesc read;
    read.name = "read_all";
    read.numWgs = 4;
    read.mlp = 8;
    read.args.push_back(KernelArgDecl{ds, AccessMode::ReadOnly,
                                      RangeKind::Full, {}});
    read.trace = [ds, lines](int, TraceSink &sink) {
        for (std::uint64_t l = 0; l < lines; ++l)
            sink.touch(ds, l, false);
    };
    gpu.enqueue(read);
    const RunResult r = gpu.run("prod_cons");
    EXPECT_EQ(r.staleReads, 0u);
    EXPECT_GT(r.l2FlushesIssued, 0u);
}

TEST(GpuSystem, StreamBindingRestrictsChiplets)
{
    RunOptions opts;
    opts.protocol = ProtocolKind::CpElide;
    opts.streamChiplets[7] = {1};
    GpuSystem gpu(tinyConfig(2), opts);
    const DsId ds = gpu.space().allocate("a", 32 * 1024);
    const std::uint64_t lines = gpu.space().alloc(ds).numLines();
    KernelDesc k = streamKernel(ds, lines, true);
    k.streamId = 7;
    gpu.enqueue(k);
    const RunResult r = gpu.run("bound");
    // All pages first-touched by chiplet 1; no remote traffic.
    EXPECT_EQ(r.flits.remote, 0u);
    EXPECT_EQ(gpu.mem().l2(0).countValid(), 0u);
}

TEST(GpuSystem, MonolithicHasNoRemoteTrafficOrSyncs)
{
    GpuConfig cfg = GpuConfig::monolithicEquivalent(2);
    cfg.cusPerChiplet = 8;
    cfg.l2SizeBytesPerChiplet = 512 * 1024;
    cfg.l3SizeBytesTotal = 512 * 1024;
    cfg.finalize();
    RunOptions opts;
    opts.protocol = ProtocolKind::Monolithic;
    opts.panicOnStale = true;
    GpuSystem gpu(cfg, opts);
    const DsId ds = gpu.space().allocate("a", 64 * 1024);
    const std::uint64_t lines = gpu.space().alloc(ds).numLines();
    for (int i = 0; i < 4; ++i)
        gpu.enqueue(streamKernel(ds, lines, true));
    const RunResult r = gpu.run("mono");
    EXPECT_EQ(r.flits.remote, 0u);
    EXPECT_EQ(r.l2InvalidatesIssued, 0u);
}

TEST(GpuSystem, MoreChipletsMoreAggregateCacheHelps)
{
    // Strong scaling: the same footprint split across more chiplets
    // fits their aggregate L2 better (here: 2 chiplets hold it, 1
    // does not) — under CPElide the 2-chiplet run must win.
    auto run = [&](int chiplets) {
        RunOptions opts;
        opts.protocol = ProtocolKind::CpElide;
        GpuSystem gpu(tinyConfig(chiplets), opts);
        const DsId ds = gpu.space().allocate("a", 384 * 1024);
        const std::uint64_t lines = gpu.space().alloc(ds).numLines();
        for (int i = 0; i < 4; ++i)
            gpu.enqueue(streamKernel(ds, lines, false, 16));
        return gpu.run("scale");
    };
    EXPECT_LT(run(2).l2.misses, run(1).l2.misses);
}

} // namespace
} // namespace cpelide
