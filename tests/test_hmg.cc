/** @file HMG directory + protocol tests. */

#include <gtest/gtest.h>

#include "coherence/hmg.hh"

namespace cpelide
{
namespace
{

GpuConfig
tinyConfig()
{
    GpuConfig cfg = GpuConfig::radeonVii(2);
    cfg.cusPerChiplet = 2;
    cfg.l2SizeBytesPerChiplet = 64 * 1024;
    cfg.l3SizeBytesTotal = 128 * 1024;
    cfg.finalize();
    return cfg;
}

TEST(HmgDirectory, TracksSharersPerRegion)
{
    HmgDirectory dir(64, 4);
    HmgDirectory::VictimRegion victim;
    dir.addSharer(0x1000, 0, &victim);
    EXPECT_FALSE(victim.valid);
    dir.addSharer(0x1040, 1, &victim); // same 256 B region
    EXPECT_EQ(dir.sharersOf(0x10c0), 0b11u);
    dir.setSharers(0x1000, 0b10, nullptr);
    EXPECT_EQ(dir.sharersOf(0x1000), 0b10u);
    dir.remove(0x1000);
    EXPECT_EQ(dir.sharersOf(0x1000), 0u);
}

TEST(HmgDirectory, RegionAlignment)
{
    EXPECT_EQ(HmgDirectory::regionAlign(0x1234),
              0x1200u); // 256 B regions
}

TEST(HmgDirectory, EvictionReportsVictim)
{
    HmgDirectory dir(8, 8); // one set of 8 entries
    HmgDirectory::VictimRegion victim;
    for (int i = 0; i < 8; ++i)
        dir.addSharer(Addr(i) * 256, 0, &victim);
    EXPECT_FALSE(victim.valid);
    dir.addSharer(Addr(8) * 256, 1, &victim);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.regionAddr, 0u); // LRU
    EXPECT_EQ(victim.sharers, 0b01u);
    EXPECT_EQ(dir.evictions(), 1u);
}

struct HmgTest : ::testing::Test
{
    HmgTest() : cfg(tinyConfig()), mem(cfg, space, /*write_through=*/true)
    {
        ds = space.allocate("a", 32 * 1024);
        const Allocation &a = space.alloc(ds);
        for (Addr off = 0; off < a.bytes; off += kPageBytes) {
            mem.pageTable().place(a.base + off,
                                  off < a.bytes / 2 ? 0 : 1);
        }
    }

    Addr lineAddr(std::uint64_t l) { return space.alloc(ds).lineAddr(l); }

    DataSpace space;
    GpuConfig cfg;
    HmgMemSystem mem;
    DsId ds = -1;
};

TEST_F(HmgTest, RemoteReadCachesAtRequesterAndHome)
{
    const std::uint64_t remote = space.alloc(ds).numLines() - 1;
    mem.access({0, 0}, ds, remote, false);
    EXPECT_TRUE(mem.l2(0).peek(lineAddr(remote))); // requester copy
    EXPECT_TRUE(mem.l2(1).peek(lineAddr(remote))); // home copy
    // Directory at the home tracks both sharers.
    EXPECT_EQ(mem.directory(1).sharersOf(lineAddr(remote)), 0b11u);
    // Second read hits locally: no more remote traffic.
    const auto remoteFlits = mem.noc().flits().remote;
    mem.kernelBoundaryL1();
    const Cycles lat = mem.access({0, 1}, ds, remote, false);
    EXPECT_EQ(lat, cfg.l2LocalLatency);
    EXPECT_EQ(mem.noc().flits().remote, remoteFlits);
}

TEST_F(HmgTest, WriteThroughInvalidatesOtherSharers)
{
    // Chiplet 0 caches a line homed at itself; chiplet 1 reads it
    // (cached at both); then chiplet 1 writes it.
    mem.access({0, 0}, ds, 0, false);
    mem.access({1, 0}, ds, 0, false);
    EXPECT_TRUE(mem.l2(1).peek(lineAddr(0)));
    // The home chiplet writes: the remote sharer's copy (chiplet 1)
    // must be invalidated.
    mem.access({0, 0}, ds, 0, true);
    EXPECT_GT(mem.sharerInvalidations(), 0u);
    EXPECT_FALSE(mem.l2(1).peek(lineAddr(0)));
    mem.kernelBoundaryL1();
    // No kernel-boundary L2 ops in HMG, yet the read is coherent.
    EXPECT_EQ(mem.kernelBoundaryL2(), 0u);
    mem.access({1, 1}, ds, 0, false);
    EXPECT_EQ(space.staleReads(), 0u);
}

TEST_F(HmgTest, WriteThroughLeavesNoDirtyLines)
{
    mem.access({0, 0}, ds, 0, true);
    mem.access({0, 0}, ds, 100, true);
    EXPECT_EQ(mem.l2(0).dirtyLines(), 0u);
    // The stores reached the LLC.
    std::uint32_t v = 0;
    EXPECT_TRUE(mem.l3(0).peek(lineAddr(0), &v));
    EXPECT_EQ(v, 1u);
}

TEST_F(HmgTest, RegionGranularityInvalidatesFourLines)
{
    // Chiplet 1 caches four lines of one region homed at chiplet 0.
    for (std::uint64_t l = 0; l < 4; ++l)
        mem.access({1, 0}, ds, l, false);
    // Chiplet 0 writes just one of them: the whole region is
    // invalidated at chiplet 1 (the 4-lines-per-entry pathology).
    mem.access({0, 0}, ds, 0, true);
    for (std::uint64_t l = 0; l < 4; ++l)
        EXPECT_FALSE(mem.l2(1).peek(lineAddr(l))) << l;
    EXPECT_EQ(mem.sharerInvalidations(), 4u);
}

TEST_F(HmgTest, NoStaleReadsUnderRandomSharing)
{
    // Random data-race-free sharing across boundary windows: within a
    // window, a line is either written (by one designated CU of one
    // designated chiplet) or read (by anyone), never both. HMG must
    // stay coherent with no kernel-boundary L2 operations at all —
    // only the usual L1 invalidations between windows.
    auto hash = [](std::uint64_t l, std::uint64_t w) {
        std::uint64_t h = (l << 17) ^ (w * 0x9e3779b97f4a7c15ull);
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
        return h ^ (h >> 31);
    };
    std::uint64_t x = 12345;
    const std::uint64_t lines = space.alloc(ds).numLines();
    for (std::uint64_t window = 0; window < 40; ++window) {
        const ChipletId writer = static_cast<ChipletId>(window & 1);
        for (int i = 0; i < 500; ++i) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            const std::uint64_t line = (x >> 16) % lines;
            const bool writable = hash(line, window) & 1;
            if (writable && ((x >> 40) & 3) == 0) {
                const CuId cu = static_cast<CuId>(hash(line, 7) & 1);
                mem.access({writer, cu}, ds, line, true);
            } else if (!writable) {
                const AccessContext ctx{
                    static_cast<ChipletId>((x >> 8) & 1),
                    static_cast<CuId>((x >> 9) & 1)};
                mem.access(ctx, ds, line, false);
            }
        }
        mem.kernelBoundaryL1();
        EXPECT_EQ(mem.kernelBoundaryL2(), 0u);
    }
    EXPECT_EQ(space.staleReads(), 0u);
}

TEST(HmgWriteBack, DirtyDataLivesAtHomeOnly)
{
    GpuConfig cfg = tinyConfig();
    DataSpace space;
    HmgMemSystem mem(cfg, space, /*write_through=*/false);
    const DsId ds = space.allocate("a", 32 * 1024);
    const Allocation &a = space.alloc(ds);
    for (Addr off = 0; off < a.bytes; off += kPageBytes)
        mem.pageTable().place(a.base + off, off < a.bytes / 2 ? 0 : 1);

    // Remote write: home L2 owns the dirty line; sender has no copy.
    const std::uint64_t remote = a.numLines() - 1;
    mem.access({0, 0}, ds, remote, true);
    EXPECT_EQ(mem.l2(1).dirtyLines(), 1u);
    EXPECT_FALSE(mem.l2(0).peek(a.lineAddr(remote)));

    // A remote read is serviced by the home's dirty copy, coherently.
    mem.kernelBoundaryL1();
    mem.access({0, 0}, ds, remote, false);
    EXPECT_EQ(space.staleReads(), 0u);
}

} // namespace
} // namespace cpelide
