/**
 * @file
 * Trace-layer tests: TraceSession recording, Chrome trace_event JSON
 * export (golden file, schema keys, monotonic ts, pid/tid mapping),
 * per-kernel phase stats summing to the aggregate counters, and the
 * CPELIDE_TRACE end-to-end path through the harness.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "trace/chrome_trace.hh"
#include "trace/trace.hh"

namespace cpelide
{
namespace
{

RunRequest
squareRequest(ProtocolKind kind, TraceSession *trace)
{
    RunRequest req;
    req.workload = "Square";
    req.protocol = kind;
    req.chiplets = 4;
    req.scale = 0.1;
    req.trace = trace;
    return req;
}

/** All "ts" values in document order (events only carry "ts"). */
std::vector<std::uint64_t>
extractTs(const std::string &json)
{
    std::vector<std::uint64_t> out;
    std::size_t pos = 0;
    while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
        pos += 5;
        out.push_back(std::strtoull(json.c_str() + pos, nullptr, 10));
    }
    return out;
}

TEST(TraceSession, RecordsSpansInstantsAndArgs)
{
    TraceSession s;
    EXPECT_TRUE(s.empty());

    s.span("k", "kernel", 2, 10, 50).arg("wgs", 8);
    s.setNow(60);
    s.instantNow("l2-release", "mem", 0).arg("dirty_lines", 3);
    ASSERT_EQ(s.size(), 2u);

    const TraceEvent &sp = s.events()[0];
    EXPECT_EQ(sp.kind, TraceEvent::Kind::Span);
    EXPECT_EQ(sp.name, "k");
    EXPECT_EQ(sp.tid, 2);
    EXPECT_EQ(sp.ts, 10u);
    EXPECT_EQ(sp.dur, 40u);
    ASSERT_EQ(sp.args.size(), 1u);
    EXPECT_EQ(sp.args[0].first, "wgs");
    EXPECT_EQ(sp.args[0].second, 8u);

    const TraceEvent &in = s.events()[1];
    EXPECT_EQ(in.kind, TraceEvent::Kind::Instant);
    EXPECT_EQ(in.ts, 60u);

    const std::vector<TraceEvent> taken = s.take();
    EXPECT_EQ(taken.size(), 2u);
    EXPECT_TRUE(s.empty());
}

TEST(ChromeTrace, GoldenJsonDocument)
{
    TraceSession s;
    s.instant("sync-plan", "cp", kCpTrack, 5);
    s.span("k0", "kernel", 0, 10, 30).arg("wgs", 4);

    TraceProcess p;
    p.pid = 1;
    p.name = "toy";
    p.numChiplets = 2;
    p.events = s.events();

    // The exact document: metadata first (process name, CP track at
    // tid 0, chiplets at tid c + 1), then data events sorted by ts.
    const std::string expected =
        "{\"traceEvents\":["
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"toy\"}},"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"CP\"}},"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":\"chiplet 0\"}},"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
        "\"args\":{\"name\":\"chiplet 1\"}},"
        "{\"name\":\"sync-plan\",\"cat\":\"cp\",\"ph\":\"i\",\"ts\":5,"
        "\"s\":\"t\",\"pid\":1,\"tid\":0},"
        "{\"name\":\"k0\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":10,"
        "\"dur\":20,\"pid\":1,\"tid\":1,\"args\":{\"wgs\":4}}"
        "],\"displayTimeUnit\":\"ms\"}";
    EXPECT_EQ(chromeTraceJson({p}), expected);
}

TEST(ChromeTrace, ArchiveAssignsPidsAndMergesSorted)
{
    TraceArchive archive; // local, not the global singleton
    TraceSession a, b;
    a.span("ka", "kernel", 0, 100, 200);
    b.span("kb", "kernel", 1, 50, 80);
    EXPECT_EQ(archive.append("run-a", 2, a.take()), 1);
    EXPECT_EQ(archive.append("run-b", 2, b.take()), 2);
    archive.addWorkerSpan(0, "run-a", 0.5, 1.5);
    EXPECT_EQ(archive.processCount(), 2u);

    const std::string json = archive.renderJson();
    // Worker pseudo-process plus both run processes are present.
    EXPECT_NE(json.find("\"name\":\"exec workers\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"worker 0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"run-a\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"run-b\""), std::string::npos);
    // Data events are merged in ts order across processes.
    const std::vector<std::uint64_t> ts = extractTs(json);
    ASSERT_FALSE(ts.empty());
    for (std::size_t i = 1; i < ts.size(); ++i)
        EXPECT_GE(ts[i], ts[i - 1]);

    archive.clear();
    EXPECT_EQ(archive.processCount(), 0u);
    // Pids restart after clear.
    EXPECT_EQ(archive.append("again", 1, {}), 1);
}

TEST(Trace, RunRecordsPerChipletKernelSpansAndSyncInstants)
{
    TraceSession session;
    const RunResult r =
        run(squareRequest(ProtocolKind::Baseline, &session));
    ASSERT_FALSE(session.empty());

    int kernelSpans = 0, syncSpans = 0, releases = 0, plans = 0;
    bool finalBarrier = false;
    std::set<int> kernelTids;
    for (const TraceEvent &e : session.events()) {
        if (e.kind == TraceEvent::Kind::Span && e.cat == "kernel") {
            ++kernelSpans;
            kernelTids.insert(e.tid);
            EXPECT_GE(e.tid, 0);
            EXPECT_LT(e.tid, 4);
        }
        if (e.kind == TraceEvent::Kind::Span && e.cat == "sync") {
            ++syncSpans;
            EXPECT_EQ(e.tid, kCpTrack);
            if (e.name == "final-barrier")
                finalBarrier = true;
        }
        if (e.name == "l2-release")
            ++releases;
        if (e.name == "sync-plan")
            ++plans;
    }
    // Every kernel produces one span per chiplet it ran on, one sync
    // span and one sync-plan instant on the CP track; the Baseline
    // flushes at every boundary, so l2-release instants must appear.
    EXPECT_EQ(kernelTids.size(), 4u);
    EXPECT_EQ(kernelSpans, static_cast<int>(r.kernels) * 4);
    EXPECT_EQ(plans, static_cast<int>(r.kernels));
    EXPECT_GT(syncSpans, 0);
    EXPECT_TRUE(finalBarrier);
    EXPECT_GT(releases, 0);
}

TEST(Trace, IdenticalRunsProduceIdenticalEvents)
{
    TraceSession a, b;
    run(squareRequest(ProtocolKind::CpElide, &a));
    run(squareRequest(ProtocolKind::CpElide, &b));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].name, b.events()[i].name);
        EXPECT_EQ(a.events()[i].tid, b.events()[i].tid);
        EXPECT_EQ(a.events()[i].ts, b.events()[i].ts);
        EXPECT_EQ(a.events()[i].dur, b.events()[i].dur);
    }
}

TEST(Trace, TracingDoesNotPerturbMeasurement)
{
    TraceSession session;
    const RunResult traced =
        run(squareRequest(ProtocolKind::CpElide, &session));
    const RunResult plain =
        run(squareRequest(ProtocolKind::CpElide, nullptr));
    EXPECT_EQ(traced.cycles, plain.cycles);
    EXPECT_EQ(traced.accesses, plain.accesses);
    EXPECT_EQ(traced.syncStallCycles, plain.syncStallCycles);
    EXPECT_EQ(traced.l2FlushesElided, plain.l2FlushesElided);
}

TEST(Trace, KernelPhaseStatsSumToAggregates)
{
    const RunResult r =
        run(squareRequest(ProtocolKind::Baseline, nullptr));
    // One phase per launch plus the final barrier; they tile the run.
    ASSERT_EQ(r.kernelPhases.size(), r.kernels + 1);
    EXPECT_TRUE(r.kernelPhases.back().finalBarrier);
    EXPECT_EQ(r.kernelPhases.back().name, "<final-barrier>");

    std::uint64_t stall = 0, flushes = 0, invals = 0, flushElided = 0,
                  invalElided = 0, written = 0, accesses = 0, hits = 0,
                  misses = 0;
    Tick prevEnd = 0;
    for (const KernelPhaseStats &ph : r.kernelPhases) {
        EXPECT_GE(ph.end, ph.start);
        EXPECT_GE(ph.start, prevEnd);
        prevEnd = ph.end;
        stall += ph.syncStallCycles;
        flushes += ph.l2FlushesIssued;
        invals += ph.l2InvalidatesIssued;
        flushElided += ph.l2FlushesElided;
        invalElided += ph.l2InvalidatesElided;
        written += ph.linesWrittenBack;
        accesses += ph.accesses;
        hits += ph.l2.hits;
        misses += ph.l2.misses;
    }
    EXPECT_EQ(stall, r.syncStallCycles);
    EXPECT_EQ(flushes, r.l2FlushesIssued);
    EXPECT_EQ(invals, r.l2InvalidatesIssued);
    EXPECT_EQ(flushElided, r.l2FlushesElided);
    EXPECT_EQ(invalElided, r.l2InvalidatesElided);
    EXPECT_EQ(written, r.linesWrittenBack);
    EXPECT_EQ(accesses, r.accesses);
    EXPECT_EQ(hits, r.l2.hits);
    EXPECT_EQ(misses, r.l2.misses);
    // The last phase ends when the run ends.
    EXPECT_EQ(r.kernelPhases.back().end, r.cycles);
}

TEST(Trace, EnvTracePathExportsThroughTheHarness)
{
    const std::string path = ::testing::TempDir() + "cpelide_trace_test.json";
    std::remove(path.c_str());
    TraceArchive::global().clear();
    ASSERT_EQ(setenv("CPELIDE_TRACE", path.c_str(), 1), 0);
    const RunResult r =
        run(squareRequest(ProtocolKind::CpElide, nullptr));
    unsetenv("CPELIDE_TRACE");
    // The harness harvested the internal session into the result and
    // rewrote the trace file.
    EXPECT_FALSE(r.traceEvents.empty());
    EXPECT_EQ(TraceArchive::global().processCount(), 1u);

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string doc;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        doc.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"Square\""), std::string::npos);
    TraceArchive::global().clear();
}

} // namespace
} // namespace cpelide
