/**
 * @file
 * Fault-injection campaigns against the correctness checkers.
 *
 * The point of the deterministic fault injector (sim/fault_injector.hh)
 * is to prove the version-tag staleness checker and the
 * host-visibility audit actually catch protocol misbehaviour, not just
 * stay silent on healthy runs. The core claims tested here:
 *
 *   - zero injected faults  -> zero findings (no false positives);
 *   - every flush drop that discards >= 1 dirty line is detected by
 *     the staleness checker or the host-visibility audit (100%
 *     detection of observable data loss);
 *   - a delayed flush is a pure timing fault: slower, never flagged;
 *   - skipped invalidates and coherence-table corruption are caught;
 *   - campaigns are bit-deterministic for a fixed seed.
 *
 * Most campaigns run a hand-built producer/consumer ping-pong (write
 * on chiplet 0, read on chiplet 1, repeated) because it maximises the
 * blast radius of every fault class: affine workloads like Square
 * keep each chiplet on its own slice, so a lost invalidate there has
 * nothing stale to expose.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_system.hh"
#include "harness/harness.hh"
#include "sim/fault_injector.hh"

namespace cpelide
{
namespace
{

GpuConfig
tinyConfig()
{
    GpuConfig cfg = GpuConfig::radeonVii(2);
    cfg.cusPerChiplet = 4;
    cfg.l2SizeBytesPerChiplet = 256 * 1024;
    cfg.l3SizeBytesTotal = 512 * 1024;
    cfg.finalize();
    return cfg;
}

KernelDesc
pingPongKernel(DsId ds, std::uint64_t lines, bool write, int stream)
{
    KernelDesc k;
    k.name = write ? "produce" : "consume";
    k.streamId = stream;
    k.numWgs = 8;
    k.mlp = 8;
    k.args.push_back(KernelArgDecl{
        ds, write ? AccessMode::ReadWrite : AccessMode::ReadOnly,
        RangeKind::Affine, {}});
    k.trace = [ds, lines, write](int wg, TraceSink &sink) {
        const std::uint64_t lo = lines * wg / 8;
        const std::uint64_t hi = lines * (wg + 1) / 8;
        for (std::uint64_t l = lo; l < hi; ++l)
            sink.touch(ds, l, write);
    };
    return k;
}

/**
 * Producer/consumer ping-pong: chiplet 0 rewrites the array, chiplet 1
 * reads it, @p rounds times. Every round moves fresh data across the
 * chiplet boundary, so any lost flush, lost invalidate, or wrongful
 * elide feeds someone stale data.
 */
RunResult
runPingPong(FaultInjector *fi, ProtocolKind kind, int rounds = 4)
{
    RunOptions opts;
    opts.protocol = kind;
    opts.faultInjector = fi;
    opts.streamChiplets[1] = {0};
    opts.streamChiplets[2] = {1};
    GpuSystem gpu(tinyConfig(), opts);
    const DsId ds = gpu.space().allocate("pp", 64 * 1024);
    const std::uint64_t lines = gpu.space().alloc(ds).numLines();
    for (int r = 0; r < rounds; ++r) {
        gpu.enqueue(pingPongKernel(ds, lines, true, 1));
        gpu.enqueue(pingPongKernel(ds, lines, false, 2));
    }
    return gpu.run("pingpong");
}

/**
 * The inverse pattern, for invalidate faults: the array lives on
 * chiplet 0 (first touch) and is read there into the local L2; chiplet
 * 1 then rewrites it remotely (write-through to the home L3) each
 * round. Chiplet 0's boundary invalidate is what purges its stale
 * local copies — lose it and its next read hits old data. The
 * forward ping-pong cannot show this: remote reads are never cached
 * in an L2, so the consumer has nothing stale to keep.
 */
RunResult
runRemoteWriteLocalRead(FaultInjector *fi, ProtocolKind kind,
                        int rounds = 4)
{
    RunOptions opts;
    opts.protocol = kind;
    opts.faultInjector = fi;
    opts.streamChiplets[1] = {0};
    opts.streamChiplets[2] = {1};
    GpuSystem gpu(tinyConfig(), opts);
    const DsId ds = gpu.space().allocate("rwlr", 64 * 1024);
    const std::uint64_t lines = gpu.space().alloc(ds).numLines();
    // Home the lines on chiplet 0 and warm its L2 with clean copies.
    gpu.enqueue(pingPongKernel(ds, lines, true, 1));
    gpu.enqueue(pingPongKernel(ds, lines, false, 1));
    for (int r = 0; r < rounds; ++r) {
        gpu.enqueue(pingPongKernel(ds, lines, true, 2));
        gpu.enqueue(pingPongKernel(ds, lines, false, 1));
    }
    return gpu.run("remote_write_local_read");
}

/** Findings from either checker. */
std::uint64_t
findings(const RunResult &r)
{
    return r.staleReads + r.hostVisibilityViolations;
}

TEST(FaultInjection, PassiveInjectorChangesNothing)
{
    // An injector with an all-zero plan observes every op but never
    // fires; the run must be identical to one without an injector.
    // Driven through the harness entry point to cover that wiring too.
    const GpuConfig cfg = GpuConfig::radeonVii(2);
    RunOptions opts;
    opts.protocol = ProtocolKind::Baseline;
    const RunResult clean = run(
        {.workload = "Square", .scale = 0.05, .cfg = cfg, .options = opts});

    FaultInjector fi{FaultPlan{}};
    opts.faultInjector = &fi;
    const RunResult passive = run(
        {.workload = "Square", .scale = 0.05, .cfg = cfg, .options = opts});

    EXPECT_EQ(fi.faultsInjected(), 0u);
    EXPECT_GT(fi.flushesSeen(), 0u);
    EXPECT_EQ(findings(clean), 0u);
    EXPECT_EQ(findings(passive), 0u);
    EXPECT_EQ(clean.cycles, passive.cycles);
    EXPECT_EQ(clean.dramAccesses, passive.dramAccesses);
    EXPECT_EQ(clean.l2FlushesIssued, passive.l2FlushesIssued);
}

TEST(FaultInjection, CleanPingPongHasNoFindings)
{
    for (ProtocolKind kind :
         {ProtocolKind::Baseline, ProtocolKind::CpElide}) {
        FaultInjector fi{FaultPlan{}};
        const RunResult r = runPingPong(&fi, kind);
        EXPECT_EQ(fi.faultsInjected(), 0u);
        EXPECT_EQ(findings(r), 0u) << protocolName(kind);
        EXPECT_GT(r.kernels, 0u);

        FaultInjector fi2{FaultPlan{}};
        const RunResult r2 = runRemoteWriteLocalRead(&fi2, kind);
        EXPECT_EQ(fi2.faultsInjected(), 0u);
        EXPECT_EQ(findings(r2), 0u) << protocolName(kind);
    }
}

TEST(FaultInjection, EveryObservableFlushDropIsDetected)
{
    // Probe the campaign length, then run one campaign per flush op,
    // dropping exactly that op. Each drop that discards dirty lines
    // must be flagged; drops of clean L2s lose nothing and must not
    // produce false positives.
    FaultInjector probe{FaultPlan{}};
    runPingPong(&probe, ProtocolKind::Baseline);
    const std::uint64_t flushes = probe.flushesSeen();
    ASSERT_GT(flushes, 0u);

    std::uint64_t observableDrops = 0;
    for (std::uint64_t i = 0; i < flushes; ++i) {
        FaultPlan plan;
        plan.dropFlushAt = {i};
        FaultInjector fi{plan};
        const RunResult r = runPingPong(&fi, ProtocolKind::Baseline);
        ASSERT_EQ(fi.flushesDropped(), 1u) << "drop index " << i;
        if (fi.droppedDirtyLines() > 0) {
            ++observableDrops;
            EXPECT_GT(findings(r), 0u)
                << "undetected data loss at flush " << i << " ("
                << fi.droppedDirtyLines() << " dirty lines)";
        } else {
            EXPECT_EQ(findings(r), 0u)
                << "false positive at clean flush " << i;
        }
    }
    // The campaign must actually have exercised data loss.
    EXPECT_GT(observableDrops, 1u);
}

TEST(FaultInjection, DroppingEveryFlushIsDetected)
{
    FaultPlan plan;
    plan.dropFlushProb = 1.0;
    FaultInjector fi{plan};
    const RunResult r = runPingPong(&fi, ProtocolKind::Baseline);
    EXPECT_EQ(fi.flushesDropped(), fi.flushesSeen());
    EXPECT_GT(fi.droppedDirtyLines(), 0u);
    // Consumers read stale data all along, and the final audit must
    // see that the last round's output never became host-visible.
    EXPECT_GT(r.staleReads, 0u);
    EXPECT_GT(r.hostVisibilityViolations, 0u);
}

TEST(FaultInjection, DelayedFlushIsPureTimingFault)
{
    const RunResult clean = runPingPong(nullptr, ProtocolKind::Baseline);

    FaultPlan plan;
    plan.delayFlushProb = 1.0;
    plan.flushDelayCycles = 5000;
    FaultInjector fi{plan};
    const RunResult r = runPingPong(&fi, ProtocolKind::Baseline);

    EXPECT_EQ(fi.flushesDelayed(), fi.flushesSeen());
    EXPECT_GT(fi.flushesDelayed(), 0u);
    // Slower, but never flagged: the data still moves correctly.
    EXPECT_EQ(findings(r), 0u);
    EXPECT_GT(r.cycles, clean.cycles);
    EXPECT_EQ(r.dramAccesses, clean.dramAccesses);
}

TEST(FaultInjection, SkippedInvalidatesLeaveStaleCopies)
{
    // Chiplet 0 caches its local array; chiplet 1 rewrites it
    // remotely each round. With chiplet 0's acquire invalidates lost
    // it keeps hitting the stale local copies.
    FaultPlan plan;
    plan.skipInvalidateProb = 1.0;
    FaultInjector fi{plan};
    const RunResult r =
        runRemoteWriteLocalRead(&fi, ProtocolKind::Baseline);
    EXPECT_EQ(fi.invalidatesSkipped(), fi.invalidatesSeen());
    EXPECT_GT(fi.invalidatesSkipped(), 0u);
    EXPECT_GT(r.staleReads, 0u);
}

TEST(FaultInjection, TableCorruptionCausesWrongfulElides)
{
    // Downgrading Dirty/Stale coherence-table state to Valid makes the
    // elide engine skip syncs it actually needed. Only meaningful for
    // CPElide (the table drives elision decisions).
    FaultPlan plan;
    plan.corruptTableProb = 1.0;
    FaultInjector fi{plan};
    const RunResult r = runPingPong(&fi, ProtocolKind::CpElide);
    ASSERT_GT(fi.tableCorruptions(), 0u);
    EXPECT_GT(findings(r), 0u);
}

TEST(FaultInjection, CampaignsAreDeterministicForFixedSeed)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.dropFlushProb = 0.25;
    plan.skipInvalidateProb = 0.25;

    FaultInjector a{plan};
    const RunResult ra = runPingPong(&a, ProtocolKind::Baseline);
    FaultInjector b{plan};
    const RunResult rb = runPingPong(&b, ProtocolKind::Baseline);

    EXPECT_EQ(a.flushesSeen(), b.flushesSeen());
    EXPECT_EQ(a.flushesDropped(), b.flushesDropped());
    EXPECT_EQ(a.invalidatesSkipped(), b.invalidatesSkipped());
    EXPECT_EQ(a.droppedDirtyLines(), b.droppedDirtyLines());
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.staleReads, rb.staleReads);
    EXPECT_EQ(ra.hostVisibilityViolations, rb.hostVisibilityViolations);

    // A different seed fires a different schedule.
    plan.seed = 1337;
    FaultInjector c{plan};
    runPingPong(&c, ProtocolKind::Baseline);
    EXPECT_TRUE(a.flushesDropped() != c.flushesDropped() ||
                a.invalidatesSkipped() != c.invalidatesSkipped() ||
                a.droppedDirtyLines() != c.droppedDirtyLines());
}

} // namespace
} // namespace cpelide
