/**
 * @file
 * Cross-module integration tests: the paper's qualitative claims on a
 * reduced configuration, plus a randomized schedule fuzzer that leans
 * on the staleness checker.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_system.hh"
#include "harness/harness.hh"
#include "sim/rng.hh"

namespace cpelide
{
namespace
{

/** All integration runs use 4 chiplets at half scale. */
RunResult
runHalf(const std::string &workload, ProtocolKind kind)
{
    return run({.workload = workload,
                .protocol = kind,
                .chiplets = 4,
                .scale = 0.5});
}

TEST(Integration, CpElideBeatsBaselineOnSquare)
{
    const RunResult b =
        runHalf("Square", ProtocolKind::Baseline);
    const RunResult c =
        runHalf("Square", ProtocolKind::CpElide);
    EXPECT_LT(c.cycles, b.cycles);
    EXPECT_LT(c.flits.total(), b.flits.total());
    EXPECT_LT(c.energy.total(), b.energy.total());
}

TEST(Integration, MonolithicBeatsChipletBaseline)
{
    const RunResult mono =
        runHalf("Square", ProtocolKind::Monolithic);
    const RunResult base =
        runHalf("Square", ProtocolKind::Baseline);
    EXPECT_LT(mono.cycles, base.cycles);
}

TEST(Integration, HmgWriteThroughHasMoreL2L3TrafficThanCpElide)
{
    const RunResult h = runHalf("Square", ProtocolKind::Hmg);
    const RunResult c =
        runHalf("Square", ProtocolKind::CpElide);
    EXPECT_GT(h.flits.l2l3, c.flits.l2l3);
}

TEST(Integration, LowReuseWorkloadSeesNoCpElidePenalty)
{
    const RunResult b =
        runHalf("Pathfinder", ProtocolKind::Baseline);
    const RunResult c =
        runHalf("Pathfinder", ProtocolKind::CpElide);
    // "CPElide does not hurt performance for applications with little
    // or no reuse": allow a 2% tolerance.
    EXPECT_LT(static_cast<double>(c.cycles),
              1.02 * static_cast<double>(b.cycles));
}

TEST(Integration, GraphWorkloadKeepsAdjacencyResident)
{
    const RunResult b =
        runHalf("Color-max", ProtocolKind::Baseline);
    const RunResult c =
        runHalf("Color-max", ProtocolKind::CpElide);
    EXPECT_GT(c.l2.hitRate(), b.l2.hitRate());
    // The graph fits in the shared LLC, so the baseline's refetches
    // show up as L2<->L3 traffic rather than DRAM accesses.
    EXPECT_LT(c.flits.l2l3, b.flits.l2l3);
    EXPECT_LE(c.dramAccesses, b.dramAccesses);
}

/**
 * Schedule fuzzer: random DAG-free kernel sequences over a handful of
 * arrays with random (but honestly annotated) access modes, random
 * chiplet subsets, and random partitions. panicOnStale aborts on any
 * elision bug. This is the test that guards the engine's soundness
 * argument.
 */
class ScheduleFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(ScheduleFuzz, NoStaleReadsEver)
{
    Rng rng(1000 + GetParam());

    GpuConfig cfg = GpuConfig::radeonVii(4);
    cfg.cusPerChiplet = 2;
    cfg.l2SizeBytesPerChiplet = 64 * 1024;
    cfg.l3SizeBytesTotal = 256 * 1024;
    cfg.finalize();
    RunOptions opts;
    opts.protocol = ProtocolKind::CpElide;
    opts.panicOnStale = true;
    opts.streamChiplets[1] = {0, 1};
    opts.streamChiplets[2] = {2, 3};
    GpuSystem gpu(cfg, opts);

    constexpr int kArrays = 5;
    std::vector<DsId> arrays;
    std::vector<std::uint64_t> lines;
    for (int i = 0; i < kArrays; ++i) {
        arrays.push_back(gpu.space().allocate(
            "arr" + std::to_string(i), 16 * 1024 + i * 8192));
        lines.push_back(gpu.space().alloc(arrays[i]).numLines());
    }

    const int kernels = 40;
    for (int k = 0; k < kernels; ++k) {
        KernelDesc desc;
        desc.name = "fuzz" + std::to_string(k);
        // Random chiplet subset via a random stream binding.
        desc.streamId = static_cast<int>(rng.below(3));
        desc.numWgs = static_cast<int>(rng.range(4, 16));
        desc.mlp = 8;

        // Pick 1-3 arrays with random modes and range kinds.
        const int nargs = static_cast<int>(rng.range(1, 3));
        struct Pick
        {
            DsId ds;
            std::uint64_t lines;
            bool write;
            bool full;
        };
        std::vector<Pick> picks;
        for (int a = 0; a < nargs; ++a) {
            const int idx = static_cast<int>(rng.below(kArrays));
            // Skip duplicates (same array twice in one kernel).
            bool dup = false;
            for (const Pick &p : picks)
                dup |= p.ds == arrays[idx];
            if (dup)
                continue;
            Pick p;
            p.ds = arrays[idx];
            p.lines = lines[idx];
            p.write = rng.chance(0.4);
            p.full = rng.chance(0.3);
            picks.push_back(p);
            desc.args.push_back(KernelArgDecl{
                p.ds,
                p.write ? AccessMode::ReadWrite : AccessMode::ReadOnly,
                p.full && !p.write ? RangeKind::Full : RangeKind::Affine,
                {}});
        }
        if (picks.empty())
            continue;

        const int wgs = desc.numWgs;
        const int salt = k;
        desc.trace = [picks, wgs, salt](int wg, TraceSink &sink) {
            for (const auto &p : picks) {
                const std::uint64_t lo = p.lines * wg / wgs;
                const std::uint64_t hi = p.lines * (wg + 1) / wgs;
                for (std::uint64_t l = lo; l < hi; ++l)
                    sink.touch(p.ds, l, p.write);
                if (!p.write && p.full) {
                    // The Full annotation permits reads anywhere:
                    // exercise that with a few scattered lines.
                    for (int j = 0; j < 4; ++j) {
                        std::uint64_t h =
                            (std::uint64_t(wg) << 20) ^
                            (std::uint64_t(salt) << 4) ^
                            static_cast<std::uint64_t>(j);
                        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
                        sink.touch(p.ds, h % p.lines, false);
                    }
                }
            }
        };
        gpu.enqueue(std::move(desc));
    }
    const RunResult r = gpu.run("fuzz");
    EXPECT_EQ(r.staleReads, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz, ::testing::Range(0, 8));

} // namespace
} // namespace cpelide
