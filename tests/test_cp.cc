/** @file Command processor tests: partitioning, packet pipeline, syncs. */

#include <gtest/gtest.h>

#include "coherence/hmg.hh"
#include "cp/global_cp.hh"
#include "cp/local_cp.hh"

namespace cpelide
{
namespace
{

TEST(WgPartition, EvenSplit)
{
    const auto chunks = partitionWgs(8, {0, 1, 2, 3});
    ASSERT_EQ(chunks.size(), 4u);
    for (int c = 0; c < 4; ++c) {
        EXPECT_EQ(chunks[c].chiplet, c);
        EXPECT_EQ(chunks[c].count(), 2);
    }
    EXPECT_EQ(chunks[0].wgBegin, 0);
    EXPECT_EQ(chunks[3].wgEnd, 8);
}

TEST(WgPartition, RemainderGoesToEarlyChiplets)
{
    const auto chunks = partitionWgs(10, {0, 1, 2, 3});
    EXPECT_EQ(chunks[0].count(), 3);
    EXPECT_EQ(chunks[1].count(), 3);
    EXPECT_EQ(chunks[2].count(), 2);
    EXPECT_EQ(chunks[3].count(), 2);
    // Contiguous, covering [0, 10).
    int next = 0;
    for (const auto &ch : chunks) {
        EXPECT_EQ(ch.wgBegin, next);
        next = ch.wgEnd;
    }
    EXPECT_EQ(next, 10);
}

TEST(WgPartition, FewerWgsThanChiplets)
{
    const auto chunks = partitionWgs(2, {0, 1, 2, 3});
    EXPECT_EQ(chunks[0].count(), 1);
    EXPECT_EQ(chunks[1].count(), 1);
    EXPECT_EQ(chunks[2].count(), 0);
    EXPECT_EQ(chunks[3].count(), 0);
}

TEST(WgPartition, SubsetOfChiplets)
{
    const auto chunks = partitionWgs(6, {1, 3});
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_EQ(chunks[0].chiplet, 1);
    EXPECT_EQ(chunks[1].chiplet, 3);
    EXPECT_EQ(chunks[0].count() + chunks[1].count(), 6);
}

TEST(WgPartition, RoundRobinDispatch)
{
    const WgChunk chunk{0, 10, 20};
    EXPECT_EQ(dispatchCu(chunk, 10, 4), 0);
    EXPECT_EQ(dispatchCu(chunk, 11, 4), 1);
    EXPECT_EQ(dispatchCu(chunk, 14, 4), 0);
}

GpuConfig
tinyConfig()
{
    GpuConfig cfg = GpuConfig::radeonVii(2);
    cfg.cusPerChiplet = 2;
    cfg.l2SizeBytesPerChiplet = 64 * 1024;
    cfg.l3SizeBytesTotal = 128 * 1024;
    cfg.finalize();
    return cfg;
}

TEST(GlobalCp, PacketPipelineHidesLatencyWhenBusy)
{
    DataSpace space;
    const GpuConfig cfg = tinyConfig();
    ViperMemSystem mem(cfg, space, true);
    GlobalCp cp(cfg, ProtocolKind::Baseline, mem);

    const Tick first = cp.processPacket(0);
    EXPECT_EQ(first, cfg.cyclesFromUs(cfg.cpPacketUs));
    // Second packet submitted immediately: processed back-to-back.
    const Tick second = cp.processPacket(0);
    EXPECT_EQ(second, 2 * cfg.cyclesFromUs(cfg.cpPacketUs));
    // A late submission restarts from its submit time.
    const Tick third = cp.processPacket(1000000);
    EXPECT_EQ(third, 1000000 + cfg.cyclesFromUs(cfg.cpPacketUs));
}

TEST(GlobalCp, CpElideTableProcessingIsPipelined)
{
    // The ~6 us table processing overlaps enqueue/execution (Section
    // IV-B: "hidden for all but the first kernel", and the first
    // kernel's overlaps the host launch path): the packet pipeline
    // advances at the same rate for CPElide and Baseline.
    DataSpace s1, s2;
    const GpuConfig cfg = tinyConfig();
    ViperMemSystem m1(cfg, s1, true);
    ViperMemSystem m2(cfg, s2, false);
    GlobalCp base(cfg, ProtocolKind::Baseline, m1);
    GlobalCp elide(cfg, ProtocolKind::CpElide, m2);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(elide.processPacket(0), base.processPacket(0));
}

KernelDesc
simpleKernel(DsId ds, AccessMode mode, RangeKind kind)
{
    KernelDesc k;
    k.name = "k";
    k.numWgs = 4;
    k.args.push_back(KernelArgDecl{ds, mode, kind, {}});
    k.trace = [](int, TraceSink &) {};
    return k;
}

TEST(GlobalCp, BaselineSyncsEveryChipletEveryLaunch)
{
    DataSpace space;
    const GpuConfig cfg = tinyConfig();
    ViperMemSystem mem(cfg, space, true);
    GlobalCp cp(cfg, ProtocolKind::Baseline, mem);
    const DsId ds = space.allocate("a", 8192);

    const auto chunks = partitionWgs(4, {0, 1});
    const KernelDesc k =
        simpleKernel(ds, AccessMode::ReadWrite, RangeKind::Affine);
    const SyncOutcome s1 = cp.launchSync(k, chunks, space);
    EXPECT_EQ(s1.acquires, 2u);
    EXPECT_GT(s1.cost, 0u);
    EXPECT_EQ(mem.l2InvalidatesIssued(), 2u);
}

TEST(GlobalCp, CpElideElidesStableAffineLaunches)
{
    DataSpace space;
    const GpuConfig cfg = tinyConfig();
    ViperMemSystem mem(cfg, space, false);
    GlobalCp cp(cfg, ProtocolKind::CpElide, mem);
    const DsId ds = space.allocate("a", 8192);
    const auto chunks = partitionWgs(4, {0, 1});

    for (int i = 0; i < 5; ++i) {
        const KernelDesc k =
            simpleKernel(ds, AccessMode::ReadWrite, RangeKind::Affine);
        const SyncOutcome s = cp.launchSync(k, chunks, space);
        EXPECT_EQ(s.acquires + s.releases, 0u) << "launch " << i;
    }
    EXPECT_EQ(mem.l2InvalidatesIssued(), 0u);
    ASSERT_NE(cp.engine(), nullptr);
    EXPECT_GT(cp.engine()->releasesElided(), 0u);
}

TEST(GlobalCp, HmgNeverIssuesBoundaryOps)
{
    DataSpace space;
    const GpuConfig cfg = tinyConfig();
    HmgMemSystem mem(cfg, space, true);
    GlobalCp cp(cfg, ProtocolKind::Hmg, mem);
    const DsId ds = space.allocate("a", 8192);
    const KernelDesc k =
        simpleKernel(ds, AccessMode::ReadWrite, RangeKind::Full);
    const SyncOutcome s =
        cp.launchSync(k, partitionWgs(4, {0, 1}), space);
    EXPECT_EQ(s.acquires + s.releases, 0u);
    EXPECT_EQ(mem.l2FlushesIssued(), 0u);
}

TEST(GlobalCp, ExtraSyncSetsAddWalkAndMessaging)
{
    // Section VI scaling study: each mimicked chiplet set serializes
    // one more cache walk + invalidate + crossbar round trip at every
    // synchronizing launch.
    DataSpace s1, s2;
    const GpuConfig cfg = tinyConfig();
    ViperMemSystem m1(cfg, s1, true);
    ViperMemSystem m2(cfg, s2, true);
    GlobalCp cp1(cfg, ProtocolKind::Baseline, m1, 0);
    GlobalCp cp2(cfg, ProtocolKind::Baseline, m2, 3);
    const DsId d1 = s1.allocate("a", 8192);
    const DsId d2 = s2.allocate("a", 8192);
    const auto chunks = partitionWgs(4, {0, 1});
    const Cycles c1 = cp1.launchSync(
        simpleKernel(d1, AccessMode::ReadWrite, RangeKind::Affine),
        chunks, s1).cost;
    const Cycles c2 = cp2.launchSync(
        simpleKernel(d2, AccessMode::ReadWrite, RangeKind::Affine),
        chunks, s2).cost;
    const Cycles walk = static_cast<Cycles>(
        cfg.l2SizeBytesPerChiplet / kLineBytes /
        cfg.flushWalkLinesPerCycle);
    const Cycles perSet = walk + cfg.invalidateCycles +
                          2 * cfg.xbarBroadcast + cfg.xbarUnicast;
    EXPECT_EQ(c2, c1 + 3 * perSet);
}

TEST(GlobalCp, FinalBarrierFlushesAllChiplets)
{
    DataSpace space;
    const GpuConfig cfg = tinyConfig();
    ViperMemSystem mem(cfg, space, false);
    GlobalCp cp(cfg, ProtocolKind::CpElide, mem);
    const DsId ds = space.allocate("a", 8192);
    mem.access({0, 0}, ds, 0, true);
    EXPECT_GT(cp.finalBarrier(), 0u);
    EXPECT_EQ(mem.l2(0).dirtyLines(), 0u);
}

} // namespace
} // namespace cpelide
