/** @file GpuConfig / protocol-name / derived-parameter tests. */

#include <gtest/gtest.h>

#include "config/gpu_config.hh"
#include "sim/log.hh"

namespace cpelide
{
namespace
{

class ChipletCountConfig : public ::testing::TestWithParam<int>
{};

TEST_P(ChipletCountConfig, RadeonViiDerivesBandwidthPerChiplet)
{
    const int n = GetParam();
    const GpuConfig cfg = GpuConfig::radeonVii(n);
    EXPECT_EQ(cfg.numChiplets, n);
    EXPECT_EQ(cfg.cusPerChiplet, 60);
    EXPECT_EQ(cfg.totalCus(), 60 * n);
    EXPECT_EQ(cfg.l2AggregateBytes(), 8ull * 1024 * 1024 * n);
    // 1 TB/s HBM and 768 GB/s link divided across chiplets.
    EXPECT_NEAR(cfg.dramBytesPerCycle, 1000.0 / n / 1.801, 1e-9);
    EXPECT_NEAR(cfg.xlinkBytesPerCycle, 768.0 / n / 1.801, 1e-9);
    EXPECT_FALSE(cfg.describe().empty());
}

TEST_P(ChipletCountConfig, MonolithicEquivalentAggregatesEverything)
{
    const int n = GetParam();
    const GpuConfig chiplet = GpuConfig::radeonVii(n);
    const GpuConfig mono = GpuConfig::monolithicEquivalent(n);
    EXPECT_EQ(mono.numChiplets, 1);
    EXPECT_EQ(mono.totalCus(), chiplet.totalCus());
    EXPECT_EQ(mono.l2AggregateBytes(), chiplet.l2AggregateBytes());
    EXPECT_NEAR(mono.dramBytesPerCycle,
                n * chiplet.dramBytesPerCycle, 1e-6);
    EXPECT_NEAR(mono.l2BytesPerCycle, n * chiplet.l2BytesPerCycle,
                1e-6);
}

INSTANTIATE_TEST_SUITE_P(Counts, ChipletCountConfig,
                         ::testing::Values(1, 2, 4, 6, 7, 8, 16));

TEST(GpuConfig, CyclesFromUsUsesGpuClock)
{
    const GpuConfig cfg = GpuConfig::radeonVii(4);
    EXPECT_EQ(cfg.cyclesFromUs(1.0), 1801u);
    EXPECT_EQ(cfg.cyclesFromUs(2.0), 3602u);
    EXPECT_EQ(cfg.cyclesFromUs(0.0), 0u);
}

TEST(GpuConfig, TableSizingMatchesPaper)
{
    const GpuConfig cfg = GpuConfig::radeonVii(4);
    EXPECT_EQ(cfg.tableDsPerKernel, 8);
    EXPECT_EQ(cfg.tableKernelDepth, 8);
    EXPECT_EQ(cfg.tableEntries(), 64);
}

TEST(GpuConfig, FinalizeRejectsBadTopology)
{
    GpuConfig cfg;
    cfg.numChiplets = 0;
    EXPECT_THROW(cfg.finalize(), FatalError);
    cfg.numChiplets = 2;
    cfg.cusPerChiplet = 0;
    EXPECT_THROW(cfg.finalize(), FatalError);
}

TEST(ProtocolName, AllKindsNamed)
{
    EXPECT_STREQ(protocolName(ProtocolKind::Baseline), "Baseline");
    EXPECT_STREQ(protocolName(ProtocolKind::CpElide), "CPElide");
    EXPECT_STREQ(protocolName(ProtocolKind::Hmg), "HMG");
    EXPECT_STREQ(protocolName(ProtocolKind::HmgWriteBack), "HMG-WB");
    EXPECT_STREQ(protocolName(ProtocolKind::Monolithic), "Monolithic");
}

TEST(GpuConfig, TableIDefaults)
{
    const GpuConfig cfg = GpuConfig::radeonVii(4);
    EXPECT_EQ(cfg.l1SizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.l1Latency, 140u);
    EXPECT_EQ(cfg.l2SizeBytesPerChiplet, 8u * 1024 * 1024);
    EXPECT_EQ(cfg.l2LocalLatency, 269u);
    EXPECT_EQ(cfg.l2RemoteLatency, 390u);
    EXPECT_EQ(cfg.l3SizeBytesTotal, 16u * 1024 * 1024);
    EXPECT_EQ(cfg.l3Latency, 330u);
    EXPECT_EQ(cfg.ldsLatency, 65u);
    EXPECT_DOUBLE_EQ(cfg.cpPacketUs, 2.0);
    EXPECT_DOUBLE_EQ(cfg.cpElideProcUs, 6.0);
    EXPECT_EQ(cfg.xbarUnicast, 65u);
    EXPECT_EQ(cfg.xbarBroadcast, 100u);
}

} // namespace
} // namespace cpelide
