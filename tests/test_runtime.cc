/** @file Public Runtime API tests (the Listing 1/2 surface). */

#include <gtest/gtest.h>

#include "runtime/runtime.hh"

namespace cpelide
{
namespace
{

GpuConfig
tinyConfig()
{
    GpuConfig cfg = GpuConfig::radeonVii(2);
    cfg.cusPerChiplet = 4;
    cfg.l2SizeBytesPerChiplet = 256 * 1024;
    cfg.l3SizeBytesTotal = 512 * 1024;
    cfg.finalize();
    return cfg;
}

RunOptions
elideOpts()
{
    RunOptions o;
    o.protocol = ProtocolKind::CpElide;
    o.panicOnStale = true;
    return o;
}

TEST(Runtime, MallocReturnsUsableHandles)
{
    Runtime rt(tinyConfig(), elideOpts());
    const DevArray a = rt.malloc("A", 100000);
    EXPECT_GE(a.bytes, 100000u);
    EXPECT_EQ(a.bytes % kPageBytes, 0u);
    EXPECT_EQ(a.span().lo, a.base);
    EXPECT_EQ(a.numLines(), a.bytes / kLineBytes);
    const AddrRange r = a.lineRange(2, 5);
    EXPECT_EQ(r.lo, a.base + 2 * kLineBytes);
    EXPECT_EQ(r.hi, a.base + 5 * kLineBytes);
}

TEST(Runtime, Listing1StyleProgramRuns)
{
    // The paper's Listing 1: square kernel, A read-only, C read-write.
    Runtime rt(tinyConfig(), elideOpts());
    const DevArray a = rt.malloc("A", 64 * 1024);
    const DevArray c = rt.malloc("C", 64 * 1024);
    const std::uint64_t lines = a.numLines();

    for (int it = 0; it < 3; ++it) {
        KernelDesc square;
        square.name = "square";
        square.numWgs = 8;
        rt.setAccessMode(square, a, AccessMode::ReadOnly);
        rt.setAccessMode(square, c, AccessMode::ReadWrite);
        square.trace = [a, c, lines](int wg, TraceSink &sink) {
            for (std::uint64_t l = lines * wg / 8;
                 l < lines * (wg + 1) / 8; ++l) {
                sink.touch(a.id, l, false);
                sink.touch(c.id, l, true);
            }
        };
        rt.launchKernel(std::move(square));
    }
    const RunResult r = rt.deviceSynchronize("square");
    EXPECT_EQ(r.kernels, 3u);
    EXPECT_EQ(r.staleReads, 0u);
    EXPECT_EQ(r.l2InvalidatesIssued, 0u); // fully elided
}

TEST(Runtime, Listing2StyleExplicitRanges)
{
    Runtime rt(tinyConfig(), elideOpts());
    const DevArray c = rt.malloc("C", 64 * 1024);
    const std::uint64_t lines = c.numLines();

    KernelDesc k;
    k.name = "halves";
    k.numWgs = 2;
    rt.setAccessModeRange(k, c, AccessMode::ReadWrite,
                          {c.lineRange(0, lines / 2),
                           c.lineRange(lines / 2, lines)});
    k.trace = [c, lines](int wg, TraceSink &sink) {
        for (std::uint64_t l = lines * wg / 2;
             l < lines * (wg + 1) / 2; ++l) {
            sink.touch(c.id, l, true);
        }
    };
    rt.launchKernel(std::move(k));
    const RunResult r = rt.deviceSynchronize("explicit_ranges");
    EXPECT_EQ(r.staleReads, 0u);
}

TEST(Runtime, ExplicitRangesViaSetAccessModeRejected)
{
    Runtime rt(tinyConfig(), elideOpts());
    const DevArray a = rt.malloc("A", 4096);
    KernelDesc k;
    EXPECT_THROW(
        rt.setAccessMode(k, a, AccessMode::ReadOnly, RangeKind::Explicit),
        FatalError);
}

TEST(Runtime, StreamBindingIsHonoured)
{
    Runtime rt(tinyConfig(), elideOpts());
    rt.setStreamChiplets(3, {0});
    const DevArray a = rt.malloc("A", 32 * 1024);
    const std::uint64_t lines = a.numLines();
    KernelDesc k;
    k.name = "bound";
    k.numWgs = 4;
    k.streamId = 3;
    rt.setAccessMode(k, a, AccessMode::ReadWrite);
    k.trace = [a, lines](int wg, TraceSink &sink) {
        for (std::uint64_t l = lines * wg / 4;
             l < lines * (wg + 1) / 4; ++l) {
            sink.touch(a.id, l, true);
        }
    };
    rt.launchKernel(std::move(k));
    const RunResult r = rt.deviceSynchronize("bound");
    EXPECT_EQ(r.flits.remote, 0u);
}

TEST(Runtime, DoubleSynchronizePanics)
{
    Runtime rt(tinyConfig(), elideOpts());
    const DevArray a = rt.malloc("A", 4096);
    KernelDesc k;
    k.name = "k";
    k.numWgs = 1;
    rt.setAccessMode(k, a, AccessMode::ReadWrite);
    k.trace = [a](int, TraceSink &sink) { sink.touch(a.id, 0, true); };
    rt.launchKernel(std::move(k));
    rt.deviceSynchronize("once");
    try {
        rt.deviceSynchronize("second");
        FAIL() << "expected SimPanicError";
    } catch (const SimPanicError &e) {
        // The message must name the offending label and point at the
        // fix (a fresh Runtime / RunRequest per measurement).
        const std::string what = e.what();
        EXPECT_NE(what.find("deviceSynchronize('second')"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("called twice"), std::string::npos) << what;
        EXPECT_NE(what.find("RunRequest"), std::string::npos) << what;
    }
}

} // namespace
} // namespace cpelide
