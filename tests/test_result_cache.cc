/**
 * @file
 * ResultCache tests: LRU bounds and recency, hit/miss tallies, the
 * on-disk store's persistence across instances, its torn-tail repair
 * (crash mid-append must not poison later appends), and record
 * integrity (a corrupted store line is quarantined — never loaded,
 * never fatal — and the affected request re-simulates).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "serve/result_cache.hh"

using namespace cpelide;

namespace
{

/** Unique temp directory per test; removed recursively on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : _path(std::string(::testing::TempDir()) + "cpelide_cache_" +
                tag + "_" + std::to_string(getpid()))
    {
        std::filesystem::remove_all(_path);
    }
    ~TempDir() { std::filesystem::remove_all(_path); }
    const std::string &str() const { return _path; }

  private:
    std::string _path;
};

RunResult
sampleResult(std::uint64_t cycles)
{
    RunResult r;
    r.workload = "Square";
    r.protocol = "CPElide";
    r.engineVersion = "v-test";
    r.numChiplets = 4;
    r.cycles = cycles;
    r.simEvents = cycles * 2;
    r.energy.dram = 1.0 / 3.0;
    return r;
}

TEST(ResultCache, MissThenHit)
{
    ResultCache cache(8);
    RunResult out;
    EXPECT_FALSE(cache.lookup(1, &out));
    EXPECT_EQ(cache.missTally(), 1u);

    cache.insert(1, "{\"k\":1}", sampleResult(100));
    ASSERT_TRUE(cache.lookup(1, &out));
    EXPECT_EQ(out.cycles, 100u);
    EXPECT_EQ(out.engineVersion, "v-test");
    EXPECT_EQ(cache.hitTally(), 1u);
    EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCache, LruEvictsColdestEntry)
{
    ResultCache cache(3);
    for (std::uint64_t k = 1; k <= 3; ++k)
        cache.insert(k, "{}", sampleResult(k));

    // Touch 1 so 2 becomes the coldest, then overflow.
    RunResult out;
    ASSERT_TRUE(cache.lookup(1, &out));
    cache.insert(4, "{}", sampleResult(4));

    EXPECT_EQ(cache.entries(), 3u);
    EXPECT_TRUE(cache.lookup(1, &out));
    EXPECT_FALSE(cache.lookup(2, &out));
    EXPECT_TRUE(cache.lookup(3, &out));
    EXPECT_TRUE(cache.lookup(4, &out));
}

TEST(ResultCache, ReinsertOnlyBumpsRecency)
{
    ResultCache cache(2);
    cache.insert(1, "{}", sampleResult(1));
    cache.insert(2, "{}", sampleResult(2));
    cache.insert(1, "{}", sampleResult(1)); // re-insert: 2 is coldest
    cache.insert(3, "{}", sampleResult(3));

    RunResult out;
    EXPECT_TRUE(cache.lookup(1, &out));
    EXPECT_FALSE(cache.lookup(2, &out));
    EXPECT_TRUE(cache.lookup(3, &out));
}

TEST(ResultCache, DiskStorePersistsAcrossInstances)
{
    TempDir dir("persist");
    {
        ResultCache cache(8, dir.str());
        EXPECT_EQ(cache.loadedEntries(), 0u);
        cache.insert(10, "{\"workload\":\"Square\"}", sampleResult(10));
        cache.insert(11, "{\"workload\":\"Square\"}", sampleResult(11));
    }

    ResultCache warm(8, dir.str());
    EXPECT_EQ(warm.loadedEntries(), 2u);
    RunResult out;
    ASSERT_TRUE(warm.lookup(10, &out));
    EXPECT_EQ(out.cycles, 10u);
    EXPECT_EQ(out.energy.dram, 1.0 / 3.0); // %.17g exactness
    ASSERT_TRUE(warm.lookup(11, &out));
    EXPECT_EQ(out.simEvents, 22u);
}

TEST(ResultCache, LoadIsCapacityBounded)
{
    TempDir dir("bounded");
    {
        ResultCache cache(16, dir.str());
        for (std::uint64_t k = 1; k <= 10; ++k)
            cache.insert(k, "{}", sampleResult(k));
    }

    // A smaller warm cache keeps the most recently appended entries.
    ResultCache warm(3, dir.str());
    EXPECT_EQ(warm.loadedEntries(), 3u);
    RunResult out;
    EXPECT_FALSE(warm.lookup(1, &out));
    EXPECT_TRUE(warm.lookup(8, &out));
    EXPECT_TRUE(warm.lookup(9, &out));
    EXPECT_TRUE(warm.lookup(10, &out));
}

TEST(ResultCache, TornTailFragmentDoesNotPoisonLaterAppends)
{
    TempDir dir("torn");
    {
        ResultCache cache(8, dir.str());
        cache.insert(1, "{}", sampleResult(1));
    }
    const std::string store =
        (std::filesystem::path(dir.str()) / "results.jsonl").string();
    {
        std::FILE *f = std::fopen(store.c_str(), "a");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"key\":\"2\",\"request\":\"{}\",\"workload", f);
        std::fclose(f);
    }

    // Reopen over the fragment and append a fresh entry.
    {
        ResultCache cache(8, dir.str());
        EXPECT_EQ(cache.loadedEntries(), 1u);
        cache.insert(3, "{}", sampleResult(3));
    }

    // Both intact entries must survive; the fragment is gone.
    ResultCache warm(8, dir.str());
    EXPECT_EQ(warm.loadedEntries(), 2u);
    RunResult out;
    EXPECT_TRUE(warm.lookup(1, &out));
    EXPECT_FALSE(warm.lookup(2, &out));
    EXPECT_TRUE(warm.lookup(3, &out));
}

TEST(ResultCache, UnterminatedCompleteTailIsKept)
{
    TempDir dir("tornline");
    {
        ResultCache cache(8, dir.str());
        cache.insert(1, "{}", sampleResult(1));
        cache.insert(2, "{}", sampleResult(2));
    }
    const std::string store =
        (std::filesystem::path(dir.str()) / "results.jsonl").string();
    // Chop the final newline: the tail line is complete but
    // unterminated, as if the process died inside the final write.
    {
        const auto size = std::filesystem::file_size(store);
        std::filesystem::resize_file(store, size - 1);
    }

    {
        ResultCache cache(8, dir.str());
        EXPECT_EQ(cache.loadedEntries(), 2u);
        cache.insert(3, "{}", sampleResult(3));
    }

    ResultCache warm(8, dir.str());
    EXPECT_EQ(warm.loadedEntries(), 3u);
    RunResult out;
    EXPECT_TRUE(warm.lookup(1, &out));
    EXPECT_TRUE(warm.lookup(2, &out));
    EXPECT_TRUE(warm.lookup(3, &out));
}

TEST(ResultCache, CorruptRecordIsQuarantinedNotLoadedNotFatal)
{
    TempDir dir("corrupt");
    {
        ResultCache cache(8, dir.str());
        cache.insert(1, "{}", sampleResult(100));
        cache.insert(2, "{}", sampleResult(200));
    }
    const std::string store =
        (std::filesystem::path(dir.str()) / "results.jsonl").string();

    // Flip one payload digit inside record 1 (an *interior*, complete
    // line — not a torn tail). The bytes still parse as JSON; only the
    // checksum can tell the record lies.
    {
        std::ifstream in(store);
        std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
        const std::size_t at = text.find("\"cycles\":100");
        ASSERT_NE(at, std::string::npos);
        text[at + std::string("\"cycles\":10").size()] = '9'; // 100 -> 109
        std::ofstream out(store, std::ios::trunc);
        out << text;
    }

    ResultCache cache(8, dir.str());
    // The tampered record is quarantined; the intact one loads.
    EXPECT_EQ(cache.quarantineTally(), 1u);
    EXPECT_EQ(cache.loadedEntries(), 1u);
    RunResult out;
    EXPECT_FALSE(cache.lookup(1, &out)); // misses: will re-simulate
    ASSERT_TRUE(cache.lookup(2, &out));
    EXPECT_EQ(out.cycles, 200u);
    // The corrupt bytes are preserved for inspection.
    const std::string qPath =
        (std::filesystem::path(dir.str()) / "quarantine.jsonl").string();
    EXPECT_TRUE(std::filesystem::exists(qPath));

    // Re-inserting the re-simulated result heals the cache: the store
    // is append-only, so the corrupt line stays (and stays skipped),
    // but the fresh append wins the key and both entries load.
    cache.insert(1, "{}", sampleResult(100));
    ResultCache healed(8, dir.str());
    EXPECT_EQ(healed.quarantineTally(), 1u);
    EXPECT_EQ(healed.loadedEntries(), 2u);
    RunResult again;
    ASSERT_TRUE(healed.lookup(1, &again));
    EXPECT_EQ(again.cycles, 100u);
    ASSERT_TRUE(healed.lookup(2, &again));
}

TEST(ResultCache, LegacyLinesWithoutChecksumStillLoad)
{
    TempDir dir("legacy");
    {
        ResultCache cache(8, dir.str());
        cache.insert(1, "{}", sampleResult(100));
    }
    const std::string store =
        (std::filesystem::path(dir.str()) / "results.jsonl").string();

    // Strip the trailing ,"sum":"<16 hex>" field, leaving the record
    // as a pre-integrity daemon would have written it.
    {
        std::ifstream in(store);
        std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
        const std::size_t at = text.find(",\"sum\":\"");
        ASSERT_NE(at, std::string::npos);
        const std::size_t end = text.find('"', at + 9);
        ASSERT_NE(end, std::string::npos);
        text.erase(at, end + 1 - at);
        std::ofstream out(store, std::ios::trunc);
        out << text;
    }

    ResultCache cache(8, dir.str());
    EXPECT_EQ(cache.quarantineTally(), 0u);
    EXPECT_EQ(cache.loadedEntries(), 1u);
    RunResult out;
    ASSERT_TRUE(cache.lookup(1, &out));
    EXPECT_EQ(out.cycles, 100u);
}

TEST(ResultCache, MemoryOnlyWhenNoDirGiven)
{
    ResultCache cache(4);
    EXPECT_TRUE(cache.storePath().empty());
    cache.insert(1, "{}", sampleResult(1));
    RunResult out;
    EXPECT_TRUE(cache.lookup(1, &out));
}

} // namespace
