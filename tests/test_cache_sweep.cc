/**
 * @file
 * Parameterized property sweeps over cache geometries and the elide
 * engine across chiplet counts — the TEST_P coverage for invariants
 * that must hold at every configuration the benches use.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/elide_engine.hh"
#include "mem/cache.hh"
#include "sim/rng.hh"

namespace cpelide
{
namespace
{

// ---------------------------------------------------------------------------
// Cache geometry sweep
// ---------------------------------------------------------------------------

struct Geom
{
    std::uint64_t sizeKb;
    std::uint32_t assoc;
};

class CacheGeometrySweep : public ::testing::TestWithParam<Geom>
{};

TEST_P(CacheGeometrySweep, NeverExceedsCapacityAndStaysConsistent)
{
    const auto [sizeKb, assoc] = GetParam();
    SetAssocCache c("sweep", CacheGeometry{sizeKb * 1024, assoc});
    const std::uint64_t capacity = c.geometry().numLines();
    std::map<Addr, std::uint32_t> shadow;
    Rng rng(sizeKb * 131 + assoc);
    std::uint32_t version = 0;

    for (int i = 0; i < 8000; ++i) {
        const Addr addr = rng.below(4 * capacity) * kLineBytes;
        if (rng.chance(0.6)) {
            Evicted victim;
            c.insert(addr, ++version, 0,
                     static_cast<std::uint32_t>(addr / kLineBytes),
                     rng.chance(0.4), &victim);
            shadow[addr] = version;
            if (victim.valid)
                shadow.erase(victim.addr);
        } else {
            std::uint32_t v = 0;
            if (c.probe(addr, &v)) {
                ASSERT_TRUE(shadow.count(addr));
                EXPECT_EQ(v, shadow[addr]);
            }
        }
        if (i % 1000 == 999) {
            EXPECT_LE(c.countValid(), capacity);
            EXPECT_LE(c.dirtyLines(), c.countValid());
        }
    }
    // Flush + invalidate must drain to exactly zero.
    c.flushAll([](const Evicted &) {});
    EXPECT_EQ(c.dirtyLines(), 0u);
    c.invalidateAll();
    EXPECT_EQ(c.countValid(), 0u);
}

TEST_P(CacheGeometrySweep, FlushReportsEveryDirtyLineExactlyOnce)
{
    const auto [sizeKb, assoc] = GetParam();
    SetAssocCache c("sweep", CacheGeometry{sizeKb * 1024, assoc});
    Rng rng(sizeKb * 7 + assoc);
    std::map<Addr, int> dirtied;
    for (int i = 0; i < 2000; ++i) {
        const Addr addr =
            rng.below(c.geometry().numLines()) * kLineBytes;
        Evicted victim;
        c.insert(addr, 1, 0, 0, true, &victim);
        dirtied[addr] = 1;
        if (victim.valid)
            dirtied.erase(victim.addr);
    }
    std::map<Addr, int> flushed;
    c.flushAll([&](const Evicted &e) { flushed[e.addr]++; });
    EXPECT_EQ(flushed.size(), dirtied.size());
    for (const auto &[addr, n] : flushed)
        EXPECT_EQ(n, 1) << addr;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(Geom{4, 1}, Geom{8, 2}, Geom{16, 4}, Geom{16, 16},
                      Geom{64, 8}, Geom{256, 32}),
    [](const ::testing::TestParamInfo<Geom> &p) {
        return std::to_string(p.param.sizeKb) + "kb_" +
               std::to_string(p.param.assoc) + "way";
    });

// ---------------------------------------------------------------------------
// Elide engine sweep across chiplet counts
// ---------------------------------------------------------------------------

class EngineChipletSweep : public ::testing::TestWithParam<int>
{};

std::vector<AddrRange>
affine(Addr base, Addr len, int n)
{
    std::vector<AddrRange> out;
    for (int c = 0; c < n; ++c) {
        out.push_back(
            {base + len * c / n, base + len * (c + 1) / n});
    }
    return out;
}

TEST_P(EngineChipletSweep, StableAffineElidesAtEveryChipletCount)
{
    const int n = GetParam();
    ElideEngine e(n, 8, 64);
    LaunchDecl d;
    for (int c = 0; c < n; ++c)
        d.chiplets.push_back(c);
    KernelArgAccess a;
    a.span = {0x100000, 0x100000 + 0x40000};
    a.mode = AccessMode::ReadWrite;
    a.perChiplet = affine(a.span.lo, 0x40000, n);
    d.args.push_back(a);

    for (int k = 0; k < 6; ++k)
        EXPECT_TRUE(e.onKernelLaunch(d).empty()) << "chiplets=" << n;
    EXPECT_EQ(e.acquiresIssued() + e.releasesIssued(), 0u);
}

TEST_P(EngineChipletSweep, ProducerConsumerReleasesEveryProducer)
{
    const int n = GetParam();
    ElideEngine e(n, 8, 64);
    LaunchDecl w;
    for (int c = 0; c < n; ++c)
        w.chiplets.push_back(c);
    KernelArgAccess a;
    a.span = {0x100000, 0x100000 + 0x40000};
    a.mode = AccessMode::ReadWrite;
    a.perChiplet = affine(a.span.lo, 0x40000, n);
    w.args.push_back(a);
    e.onKernelLaunch(w);

    LaunchDecl r = w;
    r.args[0].mode = AccessMode::ReadOnly;
    r.args[0].perChiplet.assign(static_cast<std::size_t>(n),
                                r.args[0].span);
    const SyncPlan p = e.onKernelLaunch(r);
    EXPECT_TRUE(p.acquires.empty());
    if (n == 1) {
        // A single chiplet has no remote consumers: fully elided.
        EXPECT_TRUE(p.releases.empty());
    } else {
        // Every chiplet whose slice covers at least one whole page was
        // a producer with dirty data and must flush.
        EXPECT_GE(p.releases.size(), 1u);
        EXPECT_LE(p.releases.size(), static_cast<std::size_t>(n));
    }
}

TEST_P(EngineChipletSweep, FinalBarrierReleasesAll)
{
    const int n = GetParam();
    ElideEngine e(n, 8, 64);
    EXPECT_EQ(e.finalBarrier().releases.size(),
              static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Chiplets, EngineChipletSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 7, 8, 16));

} // namespace
} // namespace cpelide
