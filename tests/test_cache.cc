/** @file SetAssocCache unit + property tests. */

#include <gtest/gtest.h>

#include <map>

#include "mem/cache.hh"
#include "sim/rng.hh"

namespace cpelide
{
namespace
{

CacheGeometry
smallGeom()
{
    return {8 * 1024, 4}; // 128 lines, 32 sets
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c("t", smallGeom());
    std::uint32_t v = 0;
    EXPECT_FALSE(c.probe(0x1000, &v));
    c.insert(0x1000, 7, 0, 0, false, nullptr);
    EXPECT_TRUE(c.probe(0x1000, &v));
    EXPECT_EQ(v, 7u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SubLineAddressesAlias)
{
    SetAssocCache c("t", smallGeom());
    c.insert(0x1000, 3, 0, 0, false, nullptr);
    EXPECT_TRUE(c.probe(0x103f));
    EXPECT_FALSE(c.probe(0x1040));
}

TEST(Cache, LruEvictionWithinSet)
{
    SetAssocCache c("t", smallGeom());
    const std::uint64_t setStride = 32 * kLineBytes; // same set
    for (int i = 0; i < 4; ++i)
        c.insert(i * setStride, i, 0, i, false, nullptr);
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_TRUE(c.probe(0));
    Evicted victim;
    c.insert(4 * setStride, 4, 0, 4, false, &victim);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.addr, setStride);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(setStride));
}

TEST(Cache, DirtyCountingAndFlush)
{
    SetAssocCache c("t", smallGeom());
    c.insert(0x0, 1, 0, 0, true, nullptr);
    c.insert(0x40, 2, 0, 1, false, nullptr);
    EXPECT_TRUE(c.writeHit(0x40, 3));
    EXPECT_EQ(c.dirtyLines(), 2u);

    std::map<Addr, std::uint32_t> flushed;
    const auto n = c.flushAll(
        [&](const Evicted &e) { flushed[e.addr] = e.version; });
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(c.dirtyLines(), 0u);
    EXPECT_EQ(flushed[0x0], 1u);
    EXPECT_EQ(flushed[0x40], 3u);
    // Clean copies are retained after a flush.
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_TRUE(c.probe(0x40));
}

TEST(Cache, FlushIsIdempotent)
{
    SetAssocCache c("t", smallGeom());
    c.insert(0x0, 1, 0, 0, true, nullptr);
    c.flushAll([](const Evicted &) {});
    const auto n = c.flushAll([](const Evicted &) {
        FAIL() << "second flush should write back nothing";
    });
    EXPECT_EQ(n, 0u);
}

TEST(Cache, InvalidateAllDropsEverything)
{
    SetAssocCache c("t", smallGeom());
    for (int i = 0; i < 32; ++i)
        c.insert(i * kLineBytes, i, 0, i, false, nullptr);
    EXPECT_EQ(c.countValid(), 32u);
    c.invalidateAll();
    EXPECT_EQ(c.countValid(), 0u);
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, InvalidateAllWithDirtyLinesPanics)
{
    SetAssocCache c("t", smallGeom());
    c.insert(0x0, 1, 0, 0, true, nullptr);
    try {
        c.invalidateAll();
        FAIL() << "expected SimPanicError";
    } catch (const SimPanicError &e) {
        EXPECT_NE(std::string(e.what()).find("dirty"), std::string::npos);
    }
}

TEST(Cache, DirtyVictimReported)
{
    SetAssocCache c("t", smallGeom());
    const std::uint64_t setStride = 32 * kLineBytes;
    for (int i = 0; i < 4; ++i)
        c.insert(i * setStride, i, 1, i, true, nullptr);
    Evicted victim;
    c.insert(4 * setStride, 9, 1, 4, false, &victim);
    ASSERT_TRUE(victim.valid);
    EXPECT_TRUE(victim.dirty);
    EXPECT_EQ(victim.ds, 1);
    EXPECT_EQ(c.dirtyLines(), 3u);
}

TEST(Cache, UpdateIfPresentDoesNotAllocate)
{
    SetAssocCache c("t", smallGeom());
    EXPECT_FALSE(c.updateIfPresent(0x80, 5, false));
    EXPECT_FALSE(c.probe(0x80));
    c.insert(0x80, 1, 0, 2, false, nullptr);
    EXPECT_TRUE(c.updateIfPresent(0x80, 5, false));
    std::uint32_t v = 0;
    EXPECT_TRUE(c.probe(0x80, &v));
    EXPECT_EQ(v, 5u);
    EXPECT_EQ(c.dirtyLines(), 0u);
}

TEST(Cache, ExtractLineRemovesAndReports)
{
    SetAssocCache c("t", smallGeom());
    c.insert(0xc0, 4, 2, 3, true, nullptr);
    Evicted e;
    ASSERT_TRUE(c.extractLine(0xc0, &e));
    EXPECT_TRUE(e.dirty);
    EXPECT_EQ(e.version, 4u);
    EXPECT_EQ(c.dirtyLines(), 0u);
    EXPECT_FALSE(c.probe(0xc0));
    EXPECT_FALSE(c.extractLine(0xc0, &e));
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(SetAssocCache("bad", CacheGeometry{100, 3}),
                 FatalError);
    EXPECT_THROW(SetAssocCache("bad", CacheGeometry{0, 1}), FatalError);
}

/** Property: cache contents always mirror a reference map. */
TEST(CacheProperty, MatchesReferenceModelUnderRandomOps)
{
    SetAssocCache c("t", smallGeom());
    std::map<Addr, std::uint32_t> shadow; // golden versions inserted
    Rng rng(123);
    std::uint32_t version = 0;

    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.below(512) * kLineBytes;
        const auto op = rng.below(10);
        if (op < 5) {
            std::uint32_t v = 0;
            if (c.probe(addr, &v)) {
                ASSERT_TRUE(shadow.count(addr));
                EXPECT_EQ(v, shadow[addr]) << "addr " << addr;
            }
        } else if (op < 8) {
            c.insert(addr, ++version, 0,
                     static_cast<std::uint32_t>(addr / kLineBytes),
                     rng.chance(0.3), nullptr);
            shadow[addr] = version;
        } else if (op == 8) {
            if (c.writeHit(addr, ++version))
                shadow[addr] = version;
        } else {
            c.invalidateLine(addr);
        }
    }
    // Every dirty line flushed must carry the last version written.
    c.flushAll([&](const Evicted &e) {
        ASSERT_TRUE(shadow.count(e.addr));
        EXPECT_EQ(e.version, shadow[e.addr]);
    });
}

} // namespace
} // namespace cpelide
