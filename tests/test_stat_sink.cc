/**
 * @file
 * StatSink tests: the JSONL round trip (render -> parse -> identical
 * records, phases included), the CSV schema, the compact kernel-phase
 * codec the journal uses, and format parsing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "stats/run_result_io.hh"
#include "stats/stat_sink.hh"

namespace cpelide
{
namespace
{

StatRecord
measuredRecord(const std::string &workload, ProtocolKind kind)
{
    RunRequest req;
    req.workload = workload;
    req.protocol = kind;
    req.chiplets = 2;
    req.scale = 0.1;
    StatRecord rec;
    rec.sweep = "test";
    rec.label = workload + "/" + protocolName(kind) + "/2c";
    rec.result = run(req);
    return rec;
}

TEST(StatFormat, ParsesKnownNamesOnly)
{
    StatFormat f = StatFormat::Ascii;
    EXPECT_TRUE(parseStatFormat("json", &f));
    EXPECT_EQ(f, StatFormat::Jsonl);
    EXPECT_TRUE(parseStatFormat("jsonl", &f));
    EXPECT_EQ(f, StatFormat::Jsonl);
    EXPECT_TRUE(parseStatFormat("csv", &f));
    EXPECT_EQ(f, StatFormat::Csv);
    EXPECT_TRUE(parseStatFormat("ascii", &f));
    EXPECT_EQ(f, StatFormat::Ascii);
    f = StatFormat::Csv;
    EXPECT_FALSE(parseStatFormat("xml", &f));
    EXPECT_EQ(f, StatFormat::Csv); // untouched on failure
}

TEST(StatSink, JsonlRoundTripReproducesRunResults)
{
    std::vector<StatRecord> records;
    records.push_back(measuredRecord("Square", ProtocolKind::CpElide));
    records.push_back(measuredRecord("Square", ProtocolKind::Baseline));
    StatRecord failed;
    failed.sweep = "test";
    failed.label = "broken/CPElide/2c";
    failed.ok = false;
    failed.error = "panic: \"quoted\" and \\slashed\\ message";
    records.push_back(failed);

    // Every phase must have travelled: the measured runs carry one
    // phase per kernel plus the final barrier.
    ASSERT_FALSE(records[0].result.kernelPhases.empty());

    std::string stream;
    for (const StatRecord &rec : records)
        stream += JsonlStatSink::render(rec);

    std::vector<StatRecord> back;
    ASSERT_TRUE(parseJsonlStats(stream, &back));
    ASSERT_EQ(back.size(), records.size());

    // Strong equality: re-rendering the parsed records reproduces the
    // byte stream, so every field (aggregates and phases) survived.
    std::string again;
    for (const StatRecord &rec : back)
        again += JsonlStatSink::render(rec);
    EXPECT_EQ(stream, again);

    // Spot-check values survived as values, not just as text.
    EXPECT_EQ(back[0].result.cycles, records[0].result.cycles);
    EXPECT_EQ(back[0].result.kernelPhases.size(),
              records[0].result.kernelPhases.size());
    EXPECT_EQ(back[0].result.kernelPhases[0].name,
              records[0].result.kernelPhases[0].name);
    EXPECT_EQ(back[0].result.kernelPhases.back().finalBarrier, true);
    EXPECT_FALSE(back[2].ok);
    EXPECT_EQ(back[2].error, failed.error);
}

TEST(StatSink, JsonlOmitsWallClockFields)
{
    const std::string line =
        JsonlStatSink::render(measuredRecord("Square",
                                             ProtocolKind::CpElide));
    // Determinism contract: no wall-clock or worker fields, so the
    // stream is byte-identical whatever CPELIDE_JOBS is.
    EXPECT_EQ(line.find("wallSeconds"), std::string::npos);
    EXPECT_EQ(line.find("worker"), std::string::npos);
    EXPECT_EQ(line.find("peakRssKb"), std::string::npos);
}

TEST(StatSink, ParseJsonlRejectsMalformedStreams)
{
    std::vector<StatRecord> out;
    // A phase line with no preceding result line.
    EXPECT_FALSE(parseJsonlStats(
        "{\"type\":\"phase\",\"label\":\"x\",\"index\":0}\n", &out));
    // Unknown type.
    EXPECT_FALSE(parseJsonlStats("{\"type\":\"banana\"}\n", &out));
    // Out-of-order phase index.
    const std::string good =
        JsonlStatSink::render(measuredRecord("Square",
                                             ProtocolKind::CpElide));
    std::string reordered = good;
    const std::size_t i0 = reordered.find("\"index\":0");
    ASSERT_NE(i0, std::string::npos);
    reordered.replace(i0, 9, "\"index\":7");
    EXPECT_FALSE(parseJsonlStats(reordered, &out));
}

TEST(StatSink, CsvHeaderAndRowsAlign)
{
    const std::string header = CsvStatSink::header();
    EXPECT_EQ(header.rfind("sweep,label,ok,error,workload", 0), 0u);

    StatRecord rec = measuredRecord("Square", ProtocolKind::CpElide);
    rec.error = "contains, comma and \"quote\"";
    rec.ok = false;
    const std::string row = CsvStatSink::row(rec);
    // Quoting keeps the column count identical to the header's.
    const auto columns = [](const std::string &line) {
        std::size_t n = 1;
        bool quoted = false;
        for (const char c : line) {
            if (c == '"')
                quoted = !quoted;
            else if (c == ',' && !quoted)
                ++n;
        }
        return n;
    };
    EXPECT_EQ(columns(row), columns(header));
    EXPECT_NE(row.find("\"contains, comma and \"\"quote\"\"\""),
              std::string::npos);
}

TEST(StatSink, CompactPhaseCodecRoundTripsHostileNames)
{
    std::vector<KernelPhaseStats> phases(2);
    phases[0].name = "k;with,delims%and\"quotes\"";
    phases[0].stream = 3;
    phases[0].start = 10;
    phases[0].end = 99;
    phases[0].syncStallCycles = 7;
    phases[0].acquires = 1;
    phases[0].releases = 2;
    phases[0].conservative = true;
    phases[0].l2FlushesIssued = 4;
    phases[0].accesses = 1234;
    phases[0].l2.hits = 56;
    phases[0].l2.misses = 78;
    phases[1].name = "<final-barrier>";
    phases[1].finalBarrier = true;
    phases[1].start = 99;
    phases[1].end = 120;

    const std::string enc = encodeKernelPhasesCompact(phases);
    std::vector<KernelPhaseStats> back;
    ASSERT_TRUE(decodeKernelPhasesCompact(enc, &back));
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, phases[0].name);
    EXPECT_EQ(back[0].stream, 3);
    EXPECT_TRUE(back[0].conservative);
    EXPECT_EQ(back[0].accesses, 1234u);
    EXPECT_EQ(back[0].l2.hits, 56u);
    EXPECT_EQ(back[0].l2.misses, 78u);
    EXPECT_TRUE(back[1].finalBarrier);
    EXPECT_EQ(back[1].name, "<final-barrier>");
    EXPECT_EQ(back[1].end, 120u);

    // Empty vector encodes to the empty string and back.
    EXPECT_EQ(encodeKernelPhasesCompact({}), "");
    ASSERT_TRUE(decodeKernelPhasesCompact("", &back));
    EXPECT_TRUE(back.empty());
    // Garbage is rejected, not misparsed.
    EXPECT_FALSE(decodeKernelPhasesCompact("not;a;phase", &back));
}

TEST(StatSink, AsciiSinkRendersSummaryTable)
{
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    {
        AsciiStatSink sink(tmp);
        StatRecord rec = measuredRecord("Square", ProtocolKind::CpElide);
        sink.emit(rec);
        sink.finish();
    }
    std::fflush(tmp);
    std::rewind(tmp);
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), tmp)) > 0)
        text.append(buf, n);
    std::fclose(tmp);
    EXPECT_NE(text.find("Square/CPElide/2c"), std::string::npos);
    EXPECT_NE(text.find("cycles"), std::string::npos);
}

TEST(StatSink, MakeStatSinkCoversEveryFormat)
{
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    EXPECT_NE(makeStatSink(StatFormat::Ascii, tmp), nullptr);
    EXPECT_NE(makeStatSink(StatFormat::Jsonl, tmp), nullptr);
    EXPECT_NE(makeStatSink(StatFormat::Csv, tmp), nullptr);
    std::fclose(tmp);
}

} // namespace
} // namespace cpelide
