/** @file DataSpace (allocator + version store + checker) tests. */

#include <gtest/gtest.h>

#include "mem/data_space.hh"

namespace cpelide
{
namespace
{

TEST(DataSpace, AllocationsArePageAlignedAndDisjoint)
{
    DataSpace s;
    const DsId a = s.allocate("a", 100);
    const DsId b = s.allocate("b", 5000);
    const Allocation &aa = s.alloc(a);
    const Allocation &bb = s.alloc(b);
    EXPECT_EQ(aa.base % kPageBytes, 0u);
    EXPECT_EQ(bb.base % kPageBytes, 0u);
    EXPECT_EQ(aa.bytes, kPageBytes);      // rounded up
    EXPECT_EQ(bb.bytes, 2 * kPageBytes);
    EXPECT_FALSE(aa.contains(bb.base));
    EXPECT_FALSE(bb.contains(aa.base));
    // Guard page between allocations (reduces false coarsening).
    EXPECT_GE(bb.base, aa.base + aa.bytes + kPageBytes);
}

TEST(DataSpace, ZeroByteAllocationGetsOnePage)
{
    DataSpace s;
    const DsId a = s.allocate("z", 0);
    EXPECT_EQ(s.alloc(a).bytes, kPageBytes);
}

TEST(DataSpace, StoreAdvancesLatest)
{
    DataSpace s;
    const DsId a = s.allocate("a", 4096);
    EXPECT_EQ(s.latest(a, 3), 0u);
    EXPECT_EQ(s.recordStore(a, 3), 1u);
    EXPECT_EQ(s.recordStore(a, 3), 2u);
    EXPECT_EQ(s.latest(a, 3), 2u);
    EXPECT_EQ(s.latest(a, 4), 0u);
}

TEST(DataSpace, MemoryVersionNeverRegresses)
{
    DataSpace s;
    const DsId a = s.allocate("a", 4096);
    s.recordStore(a, 0);
    s.recordStore(a, 0);
    s.commitToMemory(a, 0, 2);
    s.commitToMemory(a, 0, 1); // late, out-of-order writeback
    EXPECT_EQ(s.memoryVersion(a, 0), 2u);
}

TEST(DataSpace, StaleReadDetected)
{
    DataSpace s;
    const DsId a = s.allocate("a", 4096);
    s.recordStore(a, 5);
    s.checkObserved(a, 5, 0); // observed pre-store version
    EXPECT_EQ(s.staleReads(), 1u);
    s.checkObserved(a, 5, 1); // current version: fine
    EXPECT_EQ(s.staleReads(), 1u);
}

TEST(DataSpace, RacyAllocationSkipsCheck)
{
    DataSpace s;
    const DsId a = s.allocate("a", 4096);
    s.setRacy(a);
    s.recordStore(a, 1);
    s.checkObserved(a, 1, 0);
    EXPECT_EQ(s.staleReads(), 0u);
}

TEST(DataSpace, PanicOnStaleThrowsInvariantError)
{
    DataSpace s;
    s.panicOnStale(true);
    const DsId a = s.allocate("a", 4096);
    s.recordStore(a, 0);
    try {
        s.checkObserved(a, 0, 0);
        FAIL() << "expected InvariantError";
    } catch (const InvariantError &e) {
        EXPECT_NE(std::string(e.what()).find("stale read"),
                  std::string::npos);
    }
}

TEST(DataSpace, PanicOnStaleAbortsUnderEnvKnob)
{
    DataSpace s;
    s.panicOnStale(true);
    const DsId a = s.allocate("a", 4096);
    s.recordStore(a, 0);
    // CPELIDE_PANIC=abort restores the debugger-friendly abort();
    // setenv inside the death statement affects only the forked child.
    EXPECT_DEATH(
        {
            setenv("CPELIDE_PANIC", "abort", 1);
            s.checkObserved(a, 0, 0);
        },
        "stale read");
}

} // namespace
} // namespace cpelide
