/**
 * @file
 * Cross-protocol schedule fuzzer: every protocol must survive random
 * data-race-free kernel schedules with zero stale reads. The CPElide
 * fuzzer in test_integration.cc guards the elide engine; this one
 * guards the Baseline's conservative syncs, HMG's directory coherence
 * (including the write-back variant), and the monolithic reference,
 * under the same randomized workload shapes.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_system.hh"
#include "sim/rng.hh"

namespace cpelide
{
namespace
{

struct FuzzCase
{
    ProtocolKind kind;
    int seed;
};

class ProtocolFuzz : public ::testing::TestWithParam<FuzzCase>
{};

TEST_P(ProtocolFuzz, NoStaleReadsEver)
{
    const auto [kind, seed] = GetParam();
    Rng rng(7000 + seed);

    GpuConfig cfg = kind == ProtocolKind::Monolithic
                        ? GpuConfig::monolithicEquivalent(4)
                        : GpuConfig::radeonVii(4);
    cfg.cusPerChiplet = kind == ProtocolKind::Monolithic ? 8 : 2;
    cfg.l2SizeBytesPerChiplet =
        kind == ProtocolKind::Monolithic ? 256 * 1024 : 64 * 1024;
    cfg.l3SizeBytesTotal = 256 * 1024;
    cfg.finalize();

    RunOptions opts;
    opts.protocol = kind;
    opts.panicOnStale = true;
    if (kind != ProtocolKind::Monolithic) {
        opts.streamChiplets[1] = {0, 1};
        opts.streamChiplets[2] = {2, 3};
    }
    GpuSystem gpu(cfg, opts);

    constexpr int kArrays = 4;
    std::vector<DsId> arrays;
    std::vector<std::uint64_t> lines;
    for (int i = 0; i < kArrays; ++i) {
        arrays.push_back(gpu.space().allocate(
            "arr" + std::to_string(i), 12 * 1024 + i * 8192));
        lines.push_back(gpu.space().alloc(arrays[i]).numLines());
    }

    for (int k = 0; k < 30; ++k) {
        KernelDesc desc;
        desc.name = "pfuzz" + std::to_string(k);
        desc.streamId = static_cast<int>(rng.below(3));
        desc.numWgs = static_cast<int>(rng.range(4, 12));
        desc.mlp = 8;

        struct Pick
        {
            DsId ds;
            std::uint64_t lines;
            bool write;
            bool full;
            bool bypass;
        };
        std::vector<Pick> picks;
        const int nargs = static_cast<int>(rng.range(1, 3));
        for (int a = 0; a < nargs; ++a) {
            const int idx = static_cast<int>(rng.below(kArrays));
            bool dup = false;
            for (const Pick &p : picks)
                dup |= p.ds == arrays[idx];
            if (dup)
                continue;
            Pick p;
            p.ds = arrays[idx];
            p.lines = lines[idx];
            p.write = rng.chance(0.4);
            p.full = rng.chance(0.3) && !p.write;
            // The last array is bypass-only (system-scope atomics).
            p.bypass = idx == kArrays - 1;
            picks.push_back(p);
            if (!p.bypass) {
                desc.args.push_back(KernelArgDecl{
                    p.ds,
                    p.write ? AccessMode::ReadWrite
                            : AccessMode::ReadOnly,
                    p.full ? RangeKind::Full : RangeKind::Affine,
                    {}});
            }
        }
        if (picks.empty())
            continue;

        const int wgs = desc.numWgs;
        const int salt = k;
        desc.trace = [picks, wgs, salt](int wg, TraceSink &sink) {
            for (const auto &p : picks) {
                if (p.bypass) {
                    for (int j = 0; j < 16; ++j) {
                        std::uint64_t h = (std::uint64_t(wg) << 18) ^
                                          (std::uint64_t(salt) << 5) ^
                                          std::uint64_t(j);
                        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
                        sink.touchBypass(p.ds, h % p.lines, p.write);
                    }
                    continue;
                }
                const std::uint64_t lo = p.lines * wg / wgs;
                const std::uint64_t hi = p.lines * (wg + 1) / wgs;
                for (std::uint64_t l = lo; l < hi; ++l)
                    sink.touch(p.ds, l, p.write);
                if (p.full) {
                    for (int j = 0; j < 4; ++j) {
                        std::uint64_t h = (std::uint64_t(wg) << 20) ^
                                          (std::uint64_t(salt) << 4) ^
                                          std::uint64_t(j);
                        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
                        sink.touch(p.ds, h % p.lines, false);
                    }
                }
            }
        };
        gpu.enqueue(std::move(desc));
    }
    const RunResult r = gpu.run("protocol_fuzz");
    EXPECT_EQ(r.staleReads, 0u);
    EXPECT_GT(r.accesses, 0u);
}

std::vector<FuzzCase>
allCases()
{
    std::vector<FuzzCase> cases;
    for (ProtocolKind kind :
         {ProtocolKind::Baseline, ProtocolKind::CpElide,
          ProtocolKind::Hmg, ProtocolKind::HmgWriteBack,
          ProtocolKind::Monolithic}) {
        for (int seed = 0; seed < 4; ++seed)
            cases.push_back({kind, seed});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, ProtocolFuzz, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<FuzzCase> &p) {
        std::string name = std::string(protocolName(p.param.kind)) +
                           "_s" + std::to_string(p.param.seed);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace cpelide
