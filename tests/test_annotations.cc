/**
 * @file
 * Annotation-contract tests: the validator itself, and a parameterized
 * sweep proving every Table-II workload's traces stay within their
 * declared access annotations — the correctness contract the paper
 * places on the programmer/compiler.
 */

#include <gtest/gtest.h>

#include "harness/harness.hh"
#include "runtime/runtime.hh"
#include "workloads/workload.hh"

namespace cpelide
{
namespace
{

GpuConfig
tinyConfig()
{
    GpuConfig cfg = GpuConfig::radeonVii(2);
    cfg.cusPerChiplet = 4;
    cfg.l2SizeBytesPerChiplet = 256 * 1024;
    cfg.l3SizeBytesTotal = 512 * 1024;
    cfg.finalize();
    return cfg;
}

RunOptions
validatingOpts()
{
    RunOptions o;
    o.protocol = ProtocolKind::CpElide;
    o.panicOnStale = true;
    o.validateAnnotations = true;
    return o;
}

TEST(AnnotationValidator, AcceptsHonestAffineKernel)
{
    Runtime rt(tinyConfig(), validatingOpts());
    const DevArray a = rt.malloc("A", 64 * 1024);
    const std::uint64_t lines = a.numLines();
    KernelDesc k;
    k.name = "honest";
    k.numWgs = 8;
    rt.setAccessMode(k, a, AccessMode::ReadWrite);
    k.trace = [a, lines](int wg, TraceSink &sink) {
        for (std::uint64_t l = lines * wg / 8;
             l < lines * (wg + 1) / 8; ++l) {
            sink.touch(a.id, l, true);
        }
    };
    rt.launchKernel(std::move(k));
    EXPECT_EQ(rt.deviceSynchronize("honest").staleReads, 0u);
}

TEST(AnnotationValidator, RejectsOutOfSliceAccess)
{
    Runtime rt(tinyConfig(), validatingOpts());
    const DevArray a = rt.malloc("A", 64 * 1024);
    KernelDesc k;
    k.name = "liar";
    k.numWgs = 8;
    // Declared affine, but every WG reads line 0.
    rt.setAccessMode(k, a, AccessMode::ReadOnly);
    k.trace = [a](int, TraceSink &sink) { sink.touch(a.id, 0, false); };
    rt.launchKernel(std::move(k));
    try {
        rt.deviceSynchronize("liar");
        FAIL() << "expected InvariantError";
    } catch (const InvariantError &e) {
        EXPECT_NE(std::string(e.what()).find("annotation violation"),
                  std::string::npos);
    }
}

TEST(AnnotationValidator, RejectsUndeclaredStructure)
{
    Runtime rt(tinyConfig(), validatingOpts());
    const DevArray a = rt.malloc("A", 64 * 1024);
    const DevArray b = rt.malloc("B", 64 * 1024);
    KernelDesc k;
    k.name = "forgot_b";
    k.numWgs = 4;
    rt.setAccessMode(k, a, AccessMode::ReadWrite);
    k.trace = [a, b](int, TraceSink &sink) {
        sink.touch(a.id, 0, true);
        sink.touch(b.id, 0, false); // not annotated
    };
    rt.launchKernel(std::move(k));
    try {
        rt.deviceSynchronize("forgot_b");
        FAIL() << "expected InvariantError";
    } catch (const InvariantError &e) {
        EXPECT_NE(std::string(e.what()).find("not annotated"),
                  std::string::npos);
    }
}

TEST(AnnotationValidator, RejectsWriteThroughReadOnlyAnnotation)
{
    Runtime rt(tinyConfig(), validatingOpts());
    const DevArray a = rt.malloc("A", 64 * 1024);
    KernelDesc k;
    k.name = "sneaky_write";
    k.numWgs = 4;
    rt.setAccessMode(k, a, AccessMode::ReadOnly, RangeKind::Full);
    k.trace = [a](int, TraceSink &sink) { sink.touch(a.id, 0, true); };
    rt.launchKernel(std::move(k));
    EXPECT_THROW(rt.deviceSynchronize("sneaky_write"), InvariantError);
}

TEST(AnnotationValidator, BypassAccessesAreExempt)
{
    Runtime rt(tinyConfig(), validatingOpts());
    const DevArray a = rt.malloc("A", 64 * 1024);
    const DevArray scatter = rt.malloc("scatter", 64 * 1024);
    KernelDesc k;
    k.name = "atomics";
    k.numWgs = 4;
    rt.setAccessMode(k, a, AccessMode::ReadWrite);
    const std::uint64_t lines = a.numLines();
    k.trace = [a, scatter, lines](int wg, TraceSink &sink) {
        sink.touch(a.id, lines * wg / 4, true);
        sink.touchBypass(scatter.id,
                         static_cast<std::uint64_t>(wg * 131) % 1024,
                         true);
    };
    rt.launchKernel(std::move(k));
    EXPECT_EQ(rt.deviceSynchronize("atomics").staleReads, 0u);
}

/**
 * Every workload's every kernel must honour its annotations on every
 * chiplet count the paper evaluates. This is the test that catches a
 * workload generator whose affine claim is subtly wrong (the kind of
 * bug that would otherwise surface as an unexplained stale read).
 */
class WorkloadAnnotations
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{};

TEST_P(WorkloadAnnotations, TracesStayWithinDeclaredRanges)
{
    const auto &[name, chiplets] = GetParam();
    const GpuConfig cfg = GpuConfig::radeonVii(chiplets);
    RunOptions opts = validatingOpts();
    Runtime rt(cfg, opts);
    auto w = makeWorkload(name);
    w->build(rt, 0.15);
    const RunResult r = rt.deviceSynchronize(name);
    EXPECT_EQ(r.staleReads, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadAnnotations,
    ::testing::Combine(::testing::ValuesIn(workloadNames()),
                       ::testing::Values(4, 7)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>
           &p) {
        std::string name = std::get<0>(p.param) + "_" +
                           std::to_string(std::get<1>(p.param));
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace cpelide
